"""The elasticity controller: the algorithm of paper section 4.

The controller monitors index size against the soft bound (with
hysteresis, via :class:`~repro.memory.budget.MemoryBudget`) and converts
leaves between the standard and compact representations:

* **Shrinking**: an insertion that overflows a full standard leaf
  replaces it with a compact leaf of double the capacity instead of
  splitting — saving the leaf space *and* the separator insertions in
  the ancestors.  Overflowing compact leaves double their capacity up
  the ladder (32 -> 64 -> 128); at the cap they split.
* **Underflow** of a compact leaf (below the k+1 invariant) steps it
  down the ladder, eventually reverting to a standard leaf.
* **Expanding**: searches that terminate at a compact leaf randomly
  split it down the ladder, so popular leaves regain standard-leaf
  performance even without removals.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, TYPE_CHECKING

from repro import obs
from repro.blindi.leaf import CompactLeaf
from repro.btree.leaves import LeafNode
from repro.btree.tree import BPlusTree, Path
from repro.core.config import ElasticConfig
from repro.core.policies import GrowShrinkPolicy, PaperPolicy
from repro.memory.budget import MemoryBudget, PressureState
from repro.obs import (
    CapacityChangeEvent,
    LeafConversionEvent,
    PressureTransitionEvent,
)
from repro.table.table import Table


@dataclass
class ElasticityStats:
    """Counters of elasticity actions (used by the operation-cost
    breakdown experiment, section 6.1)."""

    conversions_to_compact: int = 0
    capacity_promotions: int = 0
    capacity_stepdowns: int = 0
    reversions_to_standard: int = 0
    expansion_splits: int = 0
    state_transitions: int = 0
    #: Weighted cost units spent inside conversion work.
    conversion_cost_units: float = 0.0


class ElasticityController:
    """Implements the elasticity algorithm over a host B+-tree."""

    def __init__(
        self,
        config: ElasticConfig,
        table: Table,
        policy: Optional[GrowShrinkPolicy] = None,
    ) -> None:
        self.config = config
        self.table = table
        self.policy = policy if policy is not None else PaperPolicy()
        self.budget = MemoryBudget(
            config.size_bound_bytes,
            config.shrink_trigger_fraction,
            config.expand_trigger_fraction,
        )
        self.rng = random.Random(config.rng_seed)
        self.stats = ElasticityStats()
        self.tree: Optional[BPlusTree] = None
        #: Deferred policy actions: state-change hooks fire inside
        #: overflow/underflow handling, where structural rewrites of
        #: unrelated leaves would invalidate the in-flight operation's
        #: path.  Policies queue work here; the elastic tree drains it at
        #: operation boundaries.
        self.pending_actions: List = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, tree: BPlusTree) -> None:
        """Install the elastic overflow/underflow handlers on ``tree``."""
        self.tree = tree
        tree.overflow_handler = self._handle_overflow
        tree.underflow_handler = self._handle_underflow

    @property
    def state(self) -> PressureState:
        return self.budget.state

    def observe(self) -> PressureState:
        """Re-evaluate the pressure state from the current index size."""
        assert self.tree is not None
        previous = self.budget.state
        state = self.budget.observe(self.tree.index_bytes)
        if (
            state is PressureState.EXPANDING
            and self.tree.allocator.bytes_in("leaf.compact") == 0
        ):
            # Fully decompacted: expansion is complete.
            self.budget.settle()
            state = self.budget.state
        if state is not previous:
            self.stats.state_transitions += 1
            if obs.is_enabled():
                obs.emit(PressureTransitionEvent(
                    previous=previous.value,
                    state=state.value,
                    index_bytes=self.tree.index_bytes,
                    soft_bound_bytes=self.budget.soft_bound_bytes,
                ))
            self.policy.on_state_change(self, state)
        return state

    def run_pending(self) -> None:
        """Execute policy actions deferred to an operation boundary."""
        while self.pending_actions:
            action = self.pending_actions.pop(0)
            action()

    def set_soft_bound(self, new_bound_bytes: int) -> PressureState:
        """Move the soft bound at runtime (budget-arbiter entry point).

        Must be called at an operation boundary (no descent in flight):
        the pressure state is re-evaluated against the new thresholds —
        firing the usual transition events and policy hooks — and any
        deferred policy work (cold sweeps queued by a state change) runs
        immediately.  Hysteresis is preserved across the re-bound: a
        SHRINKING index granted more budget leaves SHRINKING only
        through the ordinary SHRINKING -> EXPANDING -> NORMAL route once
        its size genuinely clears the new thresholds.  Shrinking under a
        *lower* bound happens through the same overflow-conversion
        mechanism as always; this call only arms it.
        """
        assert self.tree is not None, "set_soft_bound requires attach()"
        self.budget.set_soft_bound(new_bound_bytes)
        # Keep the config mirror consistent for introspection/reporting.
        self.config.size_bound_bytes = new_bound_bytes
        state = self.observe()
        self.run_pending()
        return state

    # ------------------------------------------------------------------
    # Leaf construction helpers
    # ------------------------------------------------------------------
    def _make_compact(
        self, capacity: int, items=None, rep=None
    ) -> CompactLeaf:
        assert self.tree is not None
        leaf = CompactLeaf(
            capacity,
            self.table,
            self.tree.allocator,
            self.tree.cost,
            self.tree.key_width,
            rep_cls=self.config.rep_cls,
            rep_kwargs=self.config.rep_kwargs(),
            breathing_slack=self.config.breathing_slack,
            items=items,
            rep=rep,
        )
        leaf.elastic_underflow = True
        return leaf

    # ------------------------------------------------------------------
    # Overflow: shrink by converting instead of splitting
    # ------------------------------------------------------------------
    def _handle_overflow(
        self, tree: BPlusTree, path: Path, leaf: LeafNode, key: bytes, tid: int
    ) -> None:
        state = self.observe()
        action = self.policy.overflow_action(self, leaf, state)
        if action == "split":
            tree.split_leaf_and_insert(path, leaf, key, tid)
            return
        promoted = isinstance(leaf, CompactLeaf)
        old_capacity = leaf.capacity
        with tree.cost.measure() as delta, \
                tree.cost.attributed_to("elastic.convert"):
            if promoted:
                new_leaf = leaf.with_capacity(leaf.capacity * 2)
                self.stats.capacity_promotions += 1
            else:
                # Converting a standard leaf: its keys are in memory, so
                # building the blind trie needs no table loads.
                keys, tids = leaf.keys_and_tids()
                new_leaf = self._make_compact(
                    2 * tree.leaf_capacity, items=list(zip(keys, tids))
                )
                self.stats.conversions_to_compact += 1
            tree.replace_leaf(path, leaf, new_leaf)
        self.stats.conversion_cost_units += delta.weighted_cost()
        if obs.is_enabled():
            if promoted:
                obs.emit(CapacityChangeEvent(
                    direction="double", trigger="overflow",
                    node_id=new_leaf.node_id, old_capacity=old_capacity,
                    new_capacity=new_leaf.capacity, count=new_leaf.count,
                    index_bytes=tree.index_bytes,
                    cost_units=delta.weighted_cost(),
                ))
            else:
                obs.emit(LeafConversionEvent(
                    direction="to_compact", trigger="overflow",
                    node_id=new_leaf.node_id, capacity=new_leaf.capacity,
                    count=new_leaf.count, index_bytes=tree.index_bytes,
                    cost_units=delta.weighted_cost(),
                ))
        new_leaf.upsert(key, tid)

    # ------------------------------------------------------------------
    # Underflow: step down the capacity ladder
    # ------------------------------------------------------------------
    def _handle_underflow(
        self, tree: BPlusTree, path: Path, leaf: LeafNode
    ) -> None:
        state = self.observe()
        action = self.policy.underflow_action(self, leaf, state)
        if action == "rebalance" or not isinstance(leaf, CompactLeaf):
            tree.rebalance_leaf(path, leaf)
            return
        half = leaf.capacity // 2
        old_capacity = leaf.capacity
        stepped_down = half > tree.leaf_capacity
        with tree.cost.measure() as delta, \
                tree.cost.attributed_to("elastic.convert"):
            if stepped_down:
                new_leaf: LeafNode = leaf.with_capacity(half)
                self.stats.capacity_stepdowns += 1
            else:
                # Reverting to a standard leaf re-materializes the keys:
                # one table load per key, the expansion cost of section 4.
                keys, tids = leaf.keys_and_tids()
                new_leaf = tree.make_standard_leaf(list(zip(keys, tids)))
                self.stats.reversions_to_standard += 1
            tree.replace_leaf(path, leaf, new_leaf)
        self.stats.conversion_cost_units += delta.weighted_cost()
        if obs.is_enabled():
            if stepped_down:
                obs.emit(CapacityChangeEvent(
                    direction="halve", trigger="underflow",
                    node_id=new_leaf.node_id, old_capacity=old_capacity,
                    new_capacity=half, count=new_leaf.count,
                    index_bytes=tree.index_bytes,
                    cost_units=delta.weighted_cost(),
                ))
            else:
                obs.emit(LeafConversionEvent(
                    direction="to_standard", trigger="underflow",
                    node_id=new_leaf.node_id, capacity=tree.leaf_capacity,
                    count=new_leaf.count, index_bytes=tree.index_bytes,
                    cost_units=delta.weighted_cost(),
                ))
        self.observe()

    # ------------------------------------------------------------------
    # Expansion: random splits of popular compact leaves
    # ------------------------------------------------------------------
    def on_search_leaf(self, path: Path, leaf: LeafNode) -> bool:
        """Called by the elastic tree after a search terminates at
        ``leaf``; may split the leaf down the ladder (section 4,
        "Expansion").  Returns True if the leaf was replaced."""
        if self.budget.state is not PressureState.EXPANDING:
            return False
        if not isinstance(leaf, CompactLeaf) or leaf.count < 2:
            return False
        probability = self.policy.expansion_split_probability(self, leaf)
        if probability <= 0.0 or self.rng.random() >= probability:
            return False
        self._expansion_split(path, leaf)
        return True

    def _expansion_split(self, path: Path, leaf: CompactLeaf) -> None:
        tree = self.tree
        assert tree is not None
        half = leaf.capacity // 2
        old_capacity = leaf.capacity
        split_compact = half > tree.leaf_capacity
        with tree.cost.measure() as delta:
            if split_compact:
                right_rep = leaf.rep.split()
                left: LeafNode = self._make_compact(half, rep=leaf.rep)
                right: LeafNode = self._make_compact(half, rep=right_rep)
            else:
                keys, tids = leaf.keys_and_tids()
                mid = len(keys) // 2
                left = tree.make_standard_leaf(list(zip(keys[:mid], tids[:mid])))
                right = tree.make_standard_leaf(list(zip(keys[mid:], tids[mid:])))
            separator = right.first_key()
            tree.replace_leaf(path, leaf, left)
            right.link_after(left)
            tree.insert_separator(path, separator, right)
        self.stats.expansion_splits += 1
        self.stats.conversion_cost_units += delta.weighted_cost()
        if obs.is_enabled():
            index_bytes = tree.index_bytes
            cost_units = delta.weighted_cost()
            for node in (left, right):
                if split_compact:
                    obs.emit(CapacityChangeEvent(
                        direction="halve", trigger="expansion",
                        node_id=node.node_id, old_capacity=old_capacity,
                        new_capacity=half, count=node.count,
                        index_bytes=index_bytes,
                        cost_units=cost_units / 2,
                    ))
                else:
                    obs.emit(LeafConversionEvent(
                        direction="to_standard", trigger="expansion",
                        node_id=node.node_id, capacity=tree.leaf_capacity,
                        count=node.count, index_bytes=index_bytes,
                        cost_units=cost_units / 2,
                    ))
        self.observe()

    # ------------------------------------------------------------------
    # Cold-first sweeps (ColdFirstPolicy: section 4's future-work policy)
    # ------------------------------------------------------------------
    def compact_cold_sweep(
        self, hand_key: Optional[bytes], sweep_len: int = 16
    ) -> Optional[bytes]:
        """CLOCK-style sweep converting cold standard leaves.

        Advances a clock hand over up to ``sweep_len`` leaves starting at
        ``hand_key`` (the whole index, incrementally, over many sweeps):
        standard leaves that were never queried since the last visit are
        converted to the compact representation; queried ones get a
        second chance (their access counter is halved).  Returns the new
        hand position, or ``None`` when the sweep wrapped.
        """
        tree = self.tree
        assert tree is not None
        if hand_key is None:
            leaf: Optional[LeafNode] = tree.first_leaf
        else:
            _, leaf = tree.descend(hand_key)
        steps = 0
        while leaf is not None and steps < sweep_len:
            successor = leaf.next_leaf
            if not leaf.is_compact and leaf.count > 0:
                if leaf.access_count == 0:
                    self._compact_cold_leaf(leaf)
                else:
                    leaf.access_count >>= 1  # aging (second chance)
            steps += 1
            leaf = successor
        self.observe()
        if leaf is None or leaf.count == 0:
            return None
        return leaf.first_key()

    def _compact_cold_leaf(self, leaf: LeafNode) -> None:
        tree = self.tree
        assert tree is not None
        path, found = tree.descend(leaf.first_key())
        if found is not leaf:  # structure moved under the sweep
            return
        with tree.cost.measure() as delta, \
                tree.cost.attributed_to("elastic.convert"):
            keys, tids = leaf.keys_and_tids()
            capacity = min(
                self.config.max_compact_capacity,
                max(2 * tree.leaf_capacity, 1 << max(0, leaf.count - 1).bit_length()),
            )
            new_leaf = self._make_compact(capacity, items=list(zip(keys, tids)))
            tree.replace_leaf(path, leaf, new_leaf)
        self.stats.conversions_to_compact += 1
        self.stats.conversion_cost_units += delta.weighted_cost()
        if obs.is_enabled():
            obs.emit(LeafConversionEvent(
                direction="to_compact", trigger="cold_sweep",
                node_id=new_leaf.node_id, capacity=new_leaf.capacity,
                count=new_leaf.count, index_bytes=tree.index_bytes,
                cost_units=delta.weighted_cost(),
            ))

    # ------------------------------------------------------------------
    # Bulk compaction (EagerCompactionPolicy / ablation)
    # ------------------------------------------------------------------
    def bulk_compact(self) -> int:
        """Convert every standard leaf to a compact leaf at once.

        Models wholesale compaction (hybrid indexes, section 2); returns
        the number of leaves converted.
        """
        tree = self.tree
        assert tree is not None
        converted = 0
        for path, node in list(tree.iter_leaves_with_paths()):
            if isinstance(node, CompactLeaf) or node.count == 0:
                continue
            keys, tids = node.keys_and_tids()
            capacity = max(
                2 * tree.leaf_capacity, 1 << (node.count - 1).bit_length()
            )
            capacity = min(capacity, self.config.max_compact_capacity)
            with tree.cost.measure() as delta:
                new_leaf = self._make_compact(
                    capacity, items=list(zip(keys, tids))
                )
                tree.replace_leaf(path, node, new_leaf)
            converted += 1
            if obs.is_enabled():
                obs.emit(LeafConversionEvent(
                    direction="to_compact", trigger="bulk",
                    node_id=new_leaf.node_id, capacity=new_leaf.capacity,
                    count=new_leaf.count, index_bytes=tree.index_bytes,
                    cost_units=delta.weighted_cost(),
                ))
        self.stats.conversions_to_compact += converted
        self.observe()
        return converted
