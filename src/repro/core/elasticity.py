"""The elasticity controller: the algorithm of paper section 4.

The controller monitors index size against the soft bound (with
hysteresis, via :class:`~repro.memory.budget.MemoryBudget`) and converts
leaves between the registered leaf kinds (:mod:`repro.btree.kinds`):

* **Shrinking**: an insertion that overflows a full standard leaf
  replaces it with a converted leaf of double the capacity instead of
  splitting — saving the leaf space *and* the separator insertions in
  the ancestors.  The target kind comes from the policy's
  ``conversion_target`` hook (the paper's two-point dial always picks
  ``"compact"``; with learned leaves enabled, read-hot leaves go
  ``"learned"``).  Overflowing converted leaves double their capacity up
  the ladder (32 -> 64 -> 128); at the cap they split.
* **Underflow** of a converted leaf (below the k+1 invariant) steps it
  down the ladder, eventually reverting to a standard leaf.
* **Expanding**: searches that terminate at a converted leaf randomly
  split it down the ladder, so popular leaves regain standard-leaf
  performance even without removals.
* **Churn fallback**: learned leaves whose mutation rate forces repeated
  retrains are split back toward the full representation whenever the
  budget is not shrinking (DESIGN.md §11).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro import obs
from repro.blindi.leaf import CompactLeaf
from repro.btree.kinds import LeafKindContext, leaf_kind
from repro.btree.leaves import LeafNode
from repro.btree.tree import BPlusTree, Path
from repro.core.config import ElasticConfig
from repro.learned.leaf import LearnedLeaf
from repro.core.policies import GrowShrinkPolicy, PaperPolicy
from repro.memory.budget import MemoryBudget, PressureState
from repro.obs import (
    CapacityChangeEvent,
    LeafConversionEvent,
    PressureTransitionEvent,
)
from repro.table.table import Table


@dataclass
class ElasticityStats:
    """Counters of elasticity actions (used by the operation-cost
    breakdown experiment, section 6.1)."""

    conversions_to_compact: int = 0
    conversions_to_learned: int = 0
    #: Conversions into registered third-party kinds.
    conversions_other: int = 0
    capacity_promotions: int = 0
    capacity_stepdowns: int = 0
    reversions_to_standard: int = 0
    expansion_splits: int = 0
    #: Churn-heavy learned leaves split back toward full representation.
    churn_splits: int = 0
    state_transitions: int = 0
    #: Weighted cost units spent inside conversion work.
    conversion_cost_units: float = 0.0


class ElasticityController:
    """Implements the elasticity algorithm over a host B+-tree."""

    def __init__(
        self,
        config: ElasticConfig,
        table: Table,
        policy: Optional[GrowShrinkPolicy] = None,
    ) -> None:
        self.config = config
        self.table = table
        self.policy = policy if policy is not None else PaperPolicy()
        self.budget = MemoryBudget(
            config.size_bound_bytes,
            config.shrink_trigger_fraction,
            config.expand_trigger_fraction,
        )
        self.rng = random.Random(config.rng_seed)
        self.stats = ElasticityStats()
        self.tree: Optional[BPlusTree] = None
        #: Hook context handed to leaf-kind build hooks; set by attach().
        self.kind_context: Optional[LeafKindContext] = None
        #: Deferred policy actions: state-change hooks fire inside
        #: overflow/underflow handling, where structural rewrites of
        #: unrelated leaves would invalidate the in-flight operation's
        #: path.  Policies queue work here; the elastic tree drains it at
        #: operation boundaries.
        self.pending_actions: List = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, tree: BPlusTree) -> None:
        """Install the elastic overflow/underflow handlers on ``tree``."""
        self.tree = tree
        self.kind_context = LeafKindContext(
            tree=tree, table=self.table, config=self.config
        )
        tree.overflow_handler = self._handle_overflow
        tree.underflow_handler = self._handle_underflow

    @property
    def state(self) -> PressureState:
        return self.budget.state

    def observe(self) -> PressureState:
        """Re-evaluate the pressure state from the current index size."""
        assert self.tree is not None
        previous = self.budget.state
        state = self.budget.observe(self.tree.index_bytes)
        if (
            state is PressureState.EXPANDING
            and self.tree.allocator.bytes_in("leaf.compact") == 0
            and self.tree.allocator.bytes_in("leaf.learned") == 0
        ):
            # Fully decompacted: expansion is complete.
            self.budget.settle()
            state = self.budget.state
        if state is not previous:
            self.stats.state_transitions += 1
            if obs.is_enabled():
                obs.emit(PressureTransitionEvent(
                    previous=previous.value,
                    state=state.value,
                    index_bytes=self.tree.index_bytes,
                    soft_bound_bytes=self.budget.soft_bound_bytes,
                ))
            self.policy.on_state_change(self, state)
        return state

    def run_pending(self) -> None:
        """Execute policy actions deferred to an operation boundary."""
        while self.pending_actions:
            action = self.pending_actions.pop(0)
            action()

    def set_soft_bound(self, new_bound_bytes: int) -> PressureState:
        """Move the soft bound at runtime (budget-arbiter entry point).

        Must be called at an operation boundary (no descent in flight):
        the pressure state is re-evaluated against the new thresholds —
        firing the usual transition events and policy hooks — and any
        deferred policy work (cold sweeps queued by a state change) runs
        immediately.  Hysteresis is preserved across the re-bound: a
        SHRINKING index granted more budget leaves SHRINKING only
        through the ordinary SHRINKING -> EXPANDING -> NORMAL route once
        its size genuinely clears the new thresholds.  Shrinking under a
        *lower* bound happens through the same overflow-conversion
        mechanism as always; this call only arms it.
        """
        assert self.tree is not None, "set_soft_bound requires attach()"
        self.budget.set_soft_bound(new_bound_bytes)
        # Keep the config mirror consistent for introspection/reporting.
        self.config.size_bound_bytes = new_bound_bytes
        state = self.observe()
        self.run_pending()
        return state

    # ------------------------------------------------------------------
    # Leaf construction helpers
    # ------------------------------------------------------------------
    def _make_compact(
        self, capacity: int, items=None, rep=None
    ) -> CompactLeaf:
        assert self.tree is not None
        leaf = CompactLeaf(
            capacity,
            self.table,
            self.tree.allocator,
            self.tree.cost,
            self.tree.key_width,
            rep_cls=self.config.rep_cls,
            rep_kwargs=self.config.rep_kwargs(),
            breathing_slack=self.config.breathing_slack,
            items=items,
            rep=rep,
        )
        leaf.elastic_underflow = True
        return leaf

    def _build_kind(
        self, kind: str, items, capacity: Optional[int] = None
    ) -> LeafNode:
        """Build a leaf of registered ``kind`` via its hooks."""
        assert self.kind_context is not None, "attach() first"
        return leaf_kind(kind).from_sorted(self.kind_context, items, capacity)

    def _count_conversion(self, kind: str, n: int = 1) -> None:
        if kind == "compact":
            self.stats.conversions_to_compact += n
        elif kind == "learned":
            self.stats.conversions_to_learned += n
        elif kind == "standard":
            self.stats.reversions_to_standard += n
        else:
            self.stats.conversions_other += n

    # ------------------------------------------------------------------
    # Overflow: shrink by converting instead of splitting
    # ------------------------------------------------------------------
    def _handle_overflow(
        self, tree: BPlusTree, path: Path, leaf: LeafNode, key: bytes, tid: int
    ) -> None:
        state = self.observe()
        action = self.policy.overflow_action(self, leaf, state)
        if action == "split":
            tree.split_leaf_and_insert(path, leaf, key, tid)
            return
        target = self.policy.conversion_target(self, leaf, state)
        promoted = leaf.kind == target and leaf.kind != "standard"
        old_capacity = leaf.capacity
        old_kind = leaf.kind
        with tree.cost.measure() as delta, \
                tree.cost.attributed_to("elastic.convert"):
            if promoted:
                new_leaf = leaf.with_capacity(leaf.capacity * 2)
                self.stats.capacity_promotions += 1
            else:
                # Converting a standard leaf keeps its in-memory keys;
                # cross-kind fallback (churn-heavy learned -> compact)
                # re-materializes them via batched table loads.  Either
                # way the new leaf starts one rung up so the pending
                # insert fits.
                if leaf.kind == "standard":
                    capacity = 2 * tree.leaf_capacity
                else:
                    capacity = leaf.capacity * 2
                keys, tids = leaf.keys_and_tids()
                new_leaf = self._build_kind(
                    target, list(zip(keys, tids)), capacity
                )
                self._count_conversion(target)
            tree.replace_leaf(path, leaf, new_leaf)
        self.stats.conversion_cost_units += delta.weighted_cost()
        if obs.is_enabled():
            if promoted:
                obs.emit(CapacityChangeEvent(
                    direction="double", trigger="overflow",
                    node_id=new_leaf.node_id, old_capacity=old_capacity,
                    new_capacity=new_leaf.capacity, count=new_leaf.count,
                    index_bytes=tree.index_bytes,
                    cost_units=delta.weighted_cost(),
                ))
            else:
                obs.emit(LeafConversionEvent(
                    direction=f"to_{target}", trigger="overflow",
                    node_id=new_leaf.node_id, capacity=new_leaf.capacity,
                    count=new_leaf.count, index_bytes=tree.index_bytes,
                    cost_units=delta.weighted_cost(),
                    from_kind=old_kind,
                ))
        new_leaf.upsert(key, tid)

    # ------------------------------------------------------------------
    # Underflow: step down the capacity ladder
    # ------------------------------------------------------------------
    def _handle_underflow(
        self, tree: BPlusTree, path: Path, leaf: LeafNode
    ) -> None:
        state = self.observe()
        action = self.policy.underflow_action(self, leaf, state)
        if action == "rebalance" or leaf.kind == "standard":
            tree.rebalance_leaf(path, leaf)
            return
        half = leaf.capacity // 2
        old_capacity = leaf.capacity
        old_kind = leaf.kind
        stepped_down = half > tree.leaf_capacity
        with tree.cost.measure() as delta, \
                tree.cost.attributed_to("elastic.convert"):
            if stepped_down:
                new_leaf: LeafNode = leaf.with_capacity(half)
                self.stats.capacity_stepdowns += 1
            else:
                # Reverting to a standard leaf re-materializes the keys:
                # one table load per key, the expansion cost of section 4.
                keys, tids = leaf.keys_and_tids()
                new_leaf = tree.make_standard_leaf(list(zip(keys, tids)))
                self.stats.reversions_to_standard += 1
            tree.replace_leaf(path, leaf, new_leaf)
        self.stats.conversion_cost_units += delta.weighted_cost()
        if obs.is_enabled():
            if stepped_down:
                obs.emit(CapacityChangeEvent(
                    direction="halve", trigger="underflow",
                    node_id=new_leaf.node_id, old_capacity=old_capacity,
                    new_capacity=half, count=new_leaf.count,
                    index_bytes=tree.index_bytes,
                    cost_units=delta.weighted_cost(),
                ))
            else:
                obs.emit(LeafConversionEvent(
                    direction="to_standard", trigger="underflow",
                    node_id=new_leaf.node_id, capacity=tree.leaf_capacity,
                    count=new_leaf.count, index_bytes=tree.index_bytes,
                    cost_units=delta.weighted_cost(),
                    from_kind=old_kind,
                ))
        self.observe()

    # ------------------------------------------------------------------
    # Expansion: random splits of popular compact leaves
    # ------------------------------------------------------------------
    def on_search_leaf(self, path: Path, leaf: LeafNode) -> bool:
        """Called by the elastic tree after a search terminates at
        ``leaf``; may split the leaf down the ladder (section 4,
        "Expansion"), or — for churn-heavy learned leaves — split it
        back toward the full representation whenever memory allows
        (DESIGN.md §11).  Returns True if the leaf was replaced."""
        if (
            leaf.kind == "learned"
            and leaf.count >= 2
            and leaf.retrain_count >= self.config.learned_churn_retrains
            and self.budget.state is not PressureState.SHRINKING
        ):
            self._split_down(path, leaf, trigger="churn")
            return True
        if self.budget.state is not PressureState.EXPANDING:
            return False
        if leaf.kind == "standard" or leaf.count < 2:
            return False
        probability = self.policy.expansion_split_probability(self, leaf)
        if probability <= 0.0 or self.rng.random() >= probability:
            return False
        self._split_down(path, leaf)
        return True

    def _split_down(
        self, path: Path, leaf: LeafNode, trigger: str = "expansion"
    ) -> None:
        tree = self.tree
        assert tree is not None
        half = leaf.capacity // 2
        old_capacity = leaf.capacity
        old_kind = leaf.kind
        split_converted = half > tree.leaf_capacity
        with tree.cost.measure() as delta:
            if split_converted and isinstance(leaf, CompactLeaf):
                right_rep = leaf.rep.split()
                left: LeafNode = self._make_compact(half, rep=leaf.rep)
                right: LeafNode = self._make_compact(half, rep=right_rep)
            elif split_converted:
                # Learned (or third-party) kinds have no in-place rep
                # split: re-materialize and rebuild both halves.
                keys, tids = leaf.keys_and_tids()
                mid = len(keys) // 2
                left = self._build_kind(
                    old_kind, list(zip(keys[:mid], tids[:mid])), half
                )
                right = self._build_kind(
                    old_kind, list(zip(keys[mid:], tids[mid:])), half
                )
                if trigger == "churn":
                    # Keep the churn verdict sticky so the halves keep
                    # descending the ladder instead of re-promoting.
                    for node in (left, right):
                        if isinstance(node, LearnedLeaf):
                            node.retrain_count = leaf.retrain_count
            else:
                keys, tids = leaf.keys_and_tids()
                mid = len(keys) // 2
                left = tree.make_standard_leaf(list(zip(keys[:mid], tids[:mid])))
                right = tree.make_standard_leaf(list(zip(keys[mid:], tids[mid:])))
            separator = right.first_key()
            tree.replace_leaf(path, leaf, left)
            right.link_after(left)
            tree.insert_separator(path, separator, right)
        if trigger == "churn":
            self.stats.churn_splits += 1
        else:
            self.stats.expansion_splits += 1
        self.stats.conversion_cost_units += delta.weighted_cost()
        if obs.is_enabled():
            index_bytes = tree.index_bytes
            cost_units = delta.weighted_cost()
            for node in (left, right):
                if split_converted:
                    obs.emit(CapacityChangeEvent(
                        direction="halve", trigger=trigger,
                        node_id=node.node_id, old_capacity=old_capacity,
                        new_capacity=half, count=node.count,
                        index_bytes=index_bytes,
                        cost_units=cost_units / 2,
                    ))
                else:
                    obs.emit(LeafConversionEvent(
                        direction="to_standard", trigger=trigger,
                        node_id=node.node_id, capacity=tree.leaf_capacity,
                        count=node.count, index_bytes=index_bytes,
                        cost_units=cost_units / 2,
                        from_kind=old_kind,
                    ))
        self.observe()

    # Backwards-compatible alias (pre-registry name).
    _expansion_split = _split_down

    # ------------------------------------------------------------------
    # Cold-first sweeps (ColdFirstPolicy: section 4's future-work policy)
    # ------------------------------------------------------------------
    def compact_cold_sweep(
        self, hand_key: Optional[bytes], sweep_len: int = 16
    ) -> Optional[bytes]:
        """CLOCK-style sweep converting cold leaves to the cold kind.

        Advances a clock hand over up to ``sweep_len`` leaves starting at
        ``hand_key`` (the whole index, incrementally, over many sweeps):
        leaves that were never queried since the last visit are converted
        to the coldest enabled kind (compact when available — cold leaves
        take the smallest representation, even cold *learned* leaves);
        queried ones get a second chance (their access counter is
        halved).  Returns the new hand position, or ``None`` when the
        sweep wrapped.
        """
        tree = self.tree
        assert tree is not None
        cold_kind = self._cold_kind()
        if hand_key is None:
            leaf: Optional[LeafNode] = tree.first_leaf
        else:
            _, leaf = tree.descend(hand_key)
        steps = 0
        while leaf is not None and steps < sweep_len:
            successor = leaf.next_leaf
            if (
                cold_kind is not None
                and leaf.kind != cold_kind
                and leaf.count > 0
            ):
                if leaf.access_count == 0:
                    self._convert_cold_leaf(leaf, cold_kind)
                else:
                    leaf.access_count >>= 1  # aging (second chance)
            steps += 1
            leaf = successor
        self.observe()
        if leaf is None or leaf.count == 0:
            return None
        return leaf.first_key()

    def _cold_kind(self) -> Optional[str]:
        kinds = self.config.conversion_kinds
        if "compact" in kinds:
            return "compact"
        return kinds[0] if kinds else None

    def _convert_cold_leaf(self, leaf: LeafNode, kind: str) -> None:
        tree = self.tree
        assert tree is not None
        path, found = tree.descend(leaf.first_key())
        if found is not leaf:  # structure moved under the sweep
            return
        old_kind = leaf.kind
        with tree.cost.measure() as delta, \
                tree.cost.attributed_to("elastic.convert"):
            keys, tids = leaf.keys_and_tids()
            capacity = min(
                self.config.max_compact_capacity,
                max(2 * tree.leaf_capacity, 1 << max(0, leaf.count - 1).bit_length()),
            )
            new_leaf = self._build_kind(kind, list(zip(keys, tids)), capacity)
            tree.replace_leaf(path, leaf, new_leaf)
        self._count_conversion(kind)
        self.stats.conversion_cost_units += delta.weighted_cost()
        if obs.is_enabled():
            obs.emit(LeafConversionEvent(
                direction=f"to_{kind}", trigger="cold_sweep",
                node_id=new_leaf.node_id, capacity=new_leaf.capacity,
                count=new_leaf.count, index_bytes=tree.index_bytes,
                cost_units=delta.weighted_cost(),
                from_kind=old_kind,
            ))

    # ------------------------------------------------------------------
    # Bulk conversion (EagerCompactionPolicy / ablation / bench arms)
    # ------------------------------------------------------------------
    def bulk_convert(self, kind: str = "compact") -> int:
        """Convert every leaf not already of ``kind`` at once.

        Models wholesale compaction (hybrid indexes, section 2) for
        ``kind="compact"``; other registered kinds give bench drivers
        static all-learned / all-standard arms.  Leaves whose contents
        do not fit the target (reverting an over-full converted leaf to
        ``"standard"``) are skipped — underflow/expansion handles those
        incrementally.  Returns the number of leaves converted.

        Raises:
            LeafKindError: if ``kind`` is not registered.
        """
        leaf_kind(kind)  # typed unknown-kind error before any work
        tree = self.tree
        assert tree is not None
        converted = 0
        for path, node in list(tree.iter_leaves_with_paths()):
            if node.kind == kind or node.count == 0:
                continue
            if kind == "standard" and node.count > tree.leaf_capacity:
                continue
            old_kind = node.kind
            keys, tids = node.keys_and_tids()
            if kind == "standard":
                capacity: Optional[int] = None
            else:
                capacity = max(
                    2 * tree.leaf_capacity, 1 << (node.count - 1).bit_length()
                )
                capacity = min(capacity, self.config.max_compact_capacity)
            with tree.cost.measure() as delta:
                new_leaf = self._build_kind(
                    kind, list(zip(keys, tids)), capacity
                )
                tree.replace_leaf(path, node, new_leaf)
            converted += 1
            if obs.is_enabled():
                obs.emit(LeafConversionEvent(
                    direction=f"to_{kind}", trigger="bulk",
                    node_id=new_leaf.node_id, capacity=new_leaf.capacity,
                    count=new_leaf.count, index_bytes=tree.index_bytes,
                    cost_units=delta.weighted_cost(),
                    from_kind=old_kind,
                ))
        self._count_conversion(kind, converted)
        self.observe()
        return converted

    def bulk_compact(self) -> int:
        """Convert every standard leaf to a compact leaf at once
        (backwards-compatible name for ``bulk_convert("compact")``)."""
        return self.bulk_convert("compact")

    # ------------------------------------------------------------------
    # Lattice retargeting (self-tuning advisor's swap_preset family)
    # ------------------------------------------------------------------
    def retarget_lattice(self, overrides: Dict[str, object]) -> int:
        """Re-point the conversion lattice in place; migrate strays.

        Applies ``overrides`` (ElasticConfig attributes — typically
        ``leaf_kinds``, the preset lattices of
        :data:`~repro.tuning.config.PRESET_LATTICES`) onto the live
        config, then converts every already-converted leaf whose kind
        the new lattice no longer allows to the new cold kind, leaf by
        leaf.  Standard leaves and the tree structure are untouched —
        unlike a drain-and-rebuild, only the leaves that must change
        representation pay conversion (and, for learned targets,
        training) cost.  Returns the number of leaves migrated.
        """
        tree = self.tree
        assert tree is not None
        for name, value in overrides.items():
            setattr(
                self.config, name,
                tuple(value) if name == "leaf_kinds" else value,
            )
        allowed = set(self.config.leaf_kinds)
        target = self._cold_kind()
        converted = 0
        if target is None:
            return converted
        for path, node in list(tree.iter_leaves_with_paths()):
            if node.kind in allowed or node.count == 0:
                continue
            old_kind = node.kind
            keys, tids = node.keys_and_tids()
            capacity = min(
                self.config.max_compact_capacity,
                max(
                    2 * tree.leaf_capacity,
                    1 << max(0, node.count - 1).bit_length(),
                ),
            )
            with tree.cost.measure() as delta, \
                    tree.cost.attributed_to("elastic.convert"):
                new_leaf = self._build_kind(
                    target, list(zip(keys, tids)), capacity
                )
                tree.replace_leaf(path, node, new_leaf)
            converted += 1
            self.stats.conversion_cost_units += delta.weighted_cost()
            if obs.is_enabled():
                obs.emit(LeafConversionEvent(
                    direction=f"to_{target}", trigger="retarget",
                    node_id=new_leaf.node_id, capacity=new_leaf.capacity,
                    count=new_leaf.count, index_bytes=tree.index_bytes,
                    cost_units=delta.weighted_cost(),
                    from_kind=old_kind,
                ))
        self._count_conversion(target, converted)
        self.observe()
        return converted
