"""The elastic B+-tree: the paper's demonstration of the framework."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.btree.kinds import leaf_kind
from repro.btree.leaves import LeafNode
from repro.btree.stats import TreeStats, collect_stats
from repro.btree.tree import BPlusTree
from repro.core.config import ElasticConfig
from repro.errors import LeafKindError
from repro.core.elasticity import ElasticityController
from repro.core.policies import GrowShrinkPolicy
from repro.memory.allocator import TrackingAllocator
from repro.memory.budget import PressureState
from repro.memory.cost_model import CostModel, NULL_COST_MODEL
from repro.table.table import Table


class ElasticBPlusTree(BPlusTree):
    """An STX-style B+-tree whose leaves elastically change representation.

    Under typical memory demands it is byte-for-byte a standard B+-tree;
    when the index size approaches the configured soft bound it starts
    converting leaves to the compact blind-trie representation, and it
    gradually reverts once the dataset shrinks (paper sections 3-4).

    Args:
        table: The database table the index references; compact leaves
            load keys from it (indirect key storage).
        config: Elasticity parameters (soft bound, thresholds, compact
            representation, breathing).
        policy: Grow/shrink policy; defaults to the paper's
            overflow/underflow piggyback policy.
        Remaining arguments as for :class:`~repro.btree.tree.BPlusTree`.
    """

    def __init__(
        self,
        table: Table,
        config: ElasticConfig,
        key_width: int = 8,
        leaf_capacity: int = 16,
        inner_capacity: int = 16,
        allocator: Optional[TrackingAllocator] = None,
        cost_model: CostModel = NULL_COST_MODEL,
        policy: Optional[GrowShrinkPolicy] = None,
    ) -> None:
        super().__init__(
            key_width=key_width,
            leaf_capacity=leaf_capacity,
            inner_capacity=inner_capacity,
            allocator=allocator,
            cost_model=cost_model,
        )
        self.table = table
        self.config = config
        self.controller = ElasticityController(config, table, policy)
        self.controller.attach(self)

    def attach_cache(self, cache) -> None:
        """Attach an adaptive read cache; every enabled leaf kind must
        support caching (:attr:`~repro.btree.kinds.LeafKindSpec.
        cache_supported`).

        Raises:
            LeafKindError: naming the first enabled kind that cannot be
                cached.
        """
        for kind_name in self.config.leaf_kinds:
            if not leaf_kind(kind_name).cache_supported:
                raise LeafKindError(
                    f"leaf kind {kind_name!r} does not support the "
                    "adaptive cache; drop it from leaf_kinds or skip "
                    "attach_cache"
                )
        super().attach_cache(cache)

    # ------------------------------------------------------------------
    # Search hooks (expansion-state random splits, section 4)
    # ------------------------------------------------------------------
    def lookup(self, key: bytes) -> Optional[int]:
        cache = self.cache
        if cache is None:
            path, leaf = self.descend(key)
            leaf.access_count += 1
            result = leaf.lookup(key)
            self.controller.on_search_leaf(path, leaf)
            self.controller.run_pending()
            return result
        tid = cache.probe_row(key)
        if tid is not None:
            # Cache hit: the tree is not touched, so no elasticity hooks
            # fire — structure evolution may diverge from the uncached
            # run, but results cannot.
            return tid
        epoch = self.structural_epoch
        leaf = cache.probe_leaf(key, epoch)
        if leaf is not None:
            leaf.access_count += 1
            result = leaf.lookup(key)
            if result is not None and leaf.indirect_keys:
                cache.admit_row(key, result)
            self.controller.run_pending()
            return result
        path, leaf, lo, hi = self._descend_fenced(key)
        leaf.access_count += 1
        result = leaf.lookup(key)
        cache.admit_leaf(lo, hi, leaf, epoch)
        if result is not None and leaf.indirect_keys:
            cache.admit_row(key, result)
        self.controller.on_search_leaf(path, leaf)
        self.controller.run_pending()
        return result

    def scan(self, start_key: bytes, count: int) -> List[Tuple[bytes, int]]:
        path, leaf = self.descend(start_key)
        leaf.access_count += 1
        if self.controller.on_search_leaf(path, leaf):
            # The leaf was split while expanding; restart on fresh nodes.
            _, leaf = self.descend(start_key)
        result = self._collect_scan(leaf, start_key, count)
        self.controller.run_pending()
        return result

    def insert(self, key: bytes, tid: int) -> Optional[int]:
        result = super().insert(key, tid)
        self.controller.run_pending()
        return result

    def remove(self, key: bytes) -> Optional[int]:
        result = super().remove(key)
        self.controller.run_pending()
        return result

    # ------------------------------------------------------------------
    # Batched execution (sorted-run descent sharing)
    # ------------------------------------------------------------------
    def lookup_batch(self, keys) -> List[Optional[int]]:
        """Batched point queries; elasticity hooks fire per leaf visit.

        Expansion splits are deferred to after the shared descent (they
        restructure the tree, which would invalidate the run partition);
        each visited compact leaf then gets the same per-search split
        chances a scalar loop would have given it, via fresh descents.
        """
        results: List[Optional[int]] = [None] * len(keys)
        if not keys:
            return results
        cache = self.cache
        positions: List[int] = []
        if cache is not None:
            keys, positions = self._probe_batch(cache, keys, results)
            if not keys:
                self.controller.run_pending()
                return results
        order, run = self._sorted_run(keys)
        visited: List[Tuple[LeafNode, int]] = []
        # Wave-price the shared descent and leaf visits; deferred
        # expansion work below is structural (copies, allocs), not a set
        # of independent loads, so it runs outside the window.
        with self.cost.mlp_window() as wave:
            groups = self._partition_descend(run)
            for leaf, lo, hi in groups:
                leaf.access_count += hi - lo
                hits = leaf.lookup_batch(run[lo:hi])
                compact = cache is not None and leaf.indirect_keys
                for offset, tid in enumerate(hits):
                    position = order[lo + offset]
                    if cache is not None:
                        position = positions[position]
                    results[position] = tid
                    if compact and tid is not None:
                        cache.admit_row(run[lo + offset], tid)
                visited.append((leaf, hi - lo))
        self._emit_batch_descent("lookup", len(keys), len(groups))
        self._emit_mlp_wave("lookup", wave)
        self._run_deferred_expansion(visited)
        self.controller.run_pending()
        return results

    def scan_batch(self, start_keys, count: int):
        results = [[] for _ in start_keys]
        if not start_keys:
            return results
        order, run = self._sorted_run(start_keys)
        visited: List[Tuple[LeafNode, int]] = []
        with self.cost.mlp_window() as wave:
            groups = self._partition_descend(run)
            for leaf, lo, hi in groups:
                leaf.access_count += hi - lo
                for offset in range(lo, hi):
                    results[order[offset]] = self._collect_scan(
                        leaf, run[offset], count
                    )
                visited.append((leaf, hi - lo))
        self._emit_batch_descent("scan", len(start_keys), len(groups))
        self._emit_mlp_wave("scan", wave)
        self._run_deferred_expansion(visited)
        self.controller.run_pending()
        return results

    def _run_deferred_expansion(
        self, visited: List[Tuple[LeafNode, int]]
    ) -> None:
        """Give each visited converted leaf its deferred expansion chances.

        Mirrors the scalar path's ``on_search_leaf`` per query: a leaf a
        batch touched ``times`` times gets up to ``times`` split chances.
        Each attempt re-descends for a fresh path (the batch partition is
        stale once any split lands), and stops once the leaf is replaced.
        Outside the expanding state, only churn-heavy learned leaves get
        visits — the scalar path demotes those on any search while
        memory allows (DESIGN.md §11).
        """
        state = self.controller.budget.state
        if state is not PressureState.EXPANDING:
            if state is PressureState.SHRINKING:
                return
            retrains = self.controller.config.learned_churn_retrains
            visited = [
                (leaf, times) for leaf, times in visited
                if leaf.kind == "learned" and leaf.retrain_count >= retrains
            ]
            if not visited:
                return
        for leaf, times in visited:
            for _ in range(times):
                if leaf.kind == "standard" or leaf.count < 2:
                    break
                path, found = self.descend(leaf.first_key())
                if found is not leaf:
                    break
                if self.controller.on_search_leaf(path, found):
                    break

    def insert_sorted_batch(self, pairs) -> List[Optional[int]]:
        results = super().insert_sorted_batch(pairs)
        self.controller.run_pending()
        return results

    def _after_batch_structural_change(self) -> None:
        # Mid-batch operation boundary: the batched insert loop has just
        # invalidated its cached descent, so deferred policy actions
        # (cold sweeps, state-change work) may restructure the tree.
        self.controller.run_pending()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pressure_state(self) -> PressureState:
        """Current elasticity state (normal / shrinking / expanding)."""
        return self.controller.state

    def stats(self) -> TreeStats:
        """Structural snapshot (leaf census, occupancy, bytes)."""
        return collect_stats(self)

    def check_elastic_invariants(self) -> None:
        """Structural checks plus the elastic fill invariant: converted
        leaves of capacity 2k hold at least k+1 keys, except transiently
        right after a conversion (which leaves them exactly full at the
        lower capacity) or an expansion split (half full).  Applies to
        every converted kind on the capacity ladder (compact, learned,
        third-party registrations)."""
        self.check_invariants(strict_fill=False)
        leaf = self.first_leaf
        while leaf is not None:
            if leaf.kind != "standard":
                assert leaf.capacity <= self.config.max_compact_capacity
                assert leaf.capacity >= 2 * self.leaf_capacity
                # Never beyond capacity, never empty while chained.
                assert 0 < leaf.count <= leaf.capacity
            leaf = leaf.next_leaf
