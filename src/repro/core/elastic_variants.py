"""Additional elastic framework instantiations (paper section 3).

The framework "can be applied to any index with internal key storage,
such as a B+-tree, skip list, or Bw-Tree".  This module instantiates it
for the Bw-tree: delta-chain leaves (internal key storage) convert to
blind tries under pressure and back.  The skip-list instantiation lives
in :mod:`repro.skiplist` (it needs its own substrate).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.baselines.bwtree import BwTreeIndex, DeltaLeaf
from repro.btree.leaves import LeafNode
from repro.btree.stats import TreeStats, collect_stats
from repro.core.config import ElasticConfig
from repro.core.framework import make_elastic
from repro.core.policies import GrowShrinkPolicy
from repro.memory.allocator import TrackingAllocator
from repro.memory.budget import PressureState
from repro.memory.cost_model import CostModel, NULL_COST_MODEL
from repro.table.table import Table


class ElasticBwTree(BwTreeIndex):
    """A Bw-tree whose delta leaves elastically convert to blind tries.

    Identical wiring to :class:`~repro.core.ElasticBPlusTree`: the
    controller intercepts overflow/underflow events; conversions replace
    a consolidated delta leaf with a compact leaf of twice the capacity,
    and reversions rebuild a fresh delta leaf (base only, empty chain).
    """

    def __init__(
        self,
        table: Table,
        config: ElasticConfig,
        key_width: int = 8,
        leaf_capacity: int = 16,
        inner_capacity: int = 16,
        allocator: Optional[TrackingAllocator] = None,
        cost_model: CostModel = NULL_COST_MODEL,
        policy: Optional[GrowShrinkPolicy] = None,
    ) -> None:
        super().__init__(
            key_width=key_width,
            leaf_capacity=leaf_capacity,
            inner_capacity=inner_capacity,
            allocator=allocator,
            cost_model=cost_model,
        )
        self.table = table
        self.config = config
        self.controller = make_elastic(self, config, table, policy)

    def make_standard_leaf(self, items: List[Tuple[bytes, int]]) -> LeafNode:
        """Reversion target: a consolidated delta leaf."""
        return DeltaLeaf(
            self.key_width, self.leaf_capacity, self.allocator, self.cost,
            items=items,
        )

    def lookup(self, key: bytes) -> Optional[int]:
        path, leaf = self.descend(key)
        result = leaf.lookup(key)
        self.controller.on_search_leaf(path, leaf)
        self.controller.run_pending()
        return result

    def scan(self, start_key: bytes, count: int) -> List[Tuple[bytes, int]]:
        path, leaf = self.descend(start_key)
        if self.controller.on_search_leaf(path, leaf):
            _, leaf = self.descend(start_key)
        result = self._collect_scan(leaf, start_key, count)
        self.controller.run_pending()
        return result

    def insert(self, key: bytes, tid: int) -> Optional[int]:
        result = super().insert(key, tid)
        self.controller.run_pending()
        return result

    def remove(self, key: bytes) -> Optional[int]:
        result = super().remove(key)
        self.controller.run_pending()
        return result

    @property
    def pressure_state(self) -> PressureState:
        return self.controller.state

    def stats(self) -> TreeStats:
        return collect_stats(self)
