"""The index registry: benchmark names -> index constructors.

Historically :func:`build_index` lived in ``repro.bench.harness``, which
meant the *database* layer imported the *benchmark* layer to construct
an index — exactly backwards for a public API.  The registry now owns
the name table; the bench harness re-exports it for the figure drivers,
and ``repro.db`` / ``repro.engine`` build indexes without touching
``repro.bench`` at all.

Names are open for extension: :func:`register_index` adds a constructor
under a new name, and :func:`available_indexes` lists everything
currently buildable.  Builders receive the standard wiring keywords —
``table``, ``allocator``, ``cost``, ``key_width``, ``size_bound_bytes``
— plus any builder-specific ones passed through ``**kwargs``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.baselines.art import ARTIndex
from repro.baselines.bwtree import BwTreeIndex
from repro.baselines.hot import HOTIndex
from repro.baselines.hybrid import HybridIndex
from repro.baselines.masstree import MasstreeIndex
from repro.baselines.skiplist import SkipListIndex
from repro.blindi.leaf import compact_leaf_factory
from repro.blindi.seqtree import SeqTreeRep
from repro.blindi.seqtrie import SeqTrieRep
from repro.blindi.subtrie import SubTrieRep
from repro.btree.tree import BPlusTree
from repro.core.config import ElasticConfig
from repro.core.elastic_btree import ElasticBPlusTree
from repro.errors import ShardConfigError


def _build_stx(*, table, allocator, cost, key_width, size_bound_bytes, **kw):
    return BPlusTree(key_width, 16, 16, allocator, cost)


def _build_elastic(*, table, allocator, cost, key_width, size_bound_bytes,
                   **kwargs):
    if size_bound_bytes is None:
        raise ValueError("elastic index needs size_bound_bytes")
    config = ElasticConfig(size_bound_bytes=size_bound_bytes, **kwargs)
    return ElasticBPlusTree(
        table, config, key_width=key_width,
        allocator=allocator, cost_model=cost,
    )


def _build_seqtree128(*, table, allocator, cost, key_width, size_bound_bytes,
                      **kwargs):
    factory = compact_leaf_factory(
        SeqTreeRep, 128, table, key_width,
        breathing_slack=kwargs.get("breathing", 4),
        rep_kwargs={"levels": kwargs.get("levels", 2)},
    )
    return BPlusTree(key_width, 128, 16, allocator, cost, leaf_factory=factory)


def _compact_host_builder(rep_cls):
    def build(*, table, allocator, cost, key_width, size_bound_bytes,
              **kwargs):
        capacity = kwargs.get("capacity", 128)
        rep_kwargs = (
            {"levels": kwargs.get("levels", 2)} if rep_cls is SeqTreeRep
            else {}
        )
        factory = compact_leaf_factory(
            rep_cls, capacity, table, key_width,
            breathing_slack=kwargs.get("breathing"),
            rep_kwargs=rep_kwargs,
        )
        return BPlusTree(
            key_width, capacity, 16, allocator, cost, leaf_factory=factory
        )

    return build


def _build_hot(*, table, allocator, cost, key_width, size_bound_bytes, **kw):
    return HOTIndex(table, key_width, cost)


def _build_art(*, table, allocator, cost, key_width, size_bound_bytes, **kw):
    return ARTIndex(key_width, cost)


def _build_skiplist(*, table, allocator, cost, key_width, size_bound_bytes,
                    **kw):
    return SkipListIndex(key_width, cost)


def _build_bwtree(*, table, allocator, cost, key_width, size_bound_bytes,
                  **kw):
    return BwTreeIndex(key_width, allocator=allocator, cost_model=cost)


def _build_masstree(*, table, allocator, cost, key_width, size_bound_bytes,
                    **kw):
    return MasstreeIndex(key_width, cost)


def _build_hybrid(*, table, allocator, cost, key_width, size_bound_bytes,
                  **kw):
    return HybridIndex(key_width, cost)


_BUILDERS: Dict[str, Callable] = {
    "stx": _build_stx,
    "elastic": _build_elastic,
    "seqtree128": _build_seqtree128,
    "stx-seqtree": _compact_host_builder(SeqTreeRep),
    "stx-subtrie": _compact_host_builder(SubTrieRep),
    "stx-seqtrie": _compact_host_builder(SeqTrieRep),
    "hot": _build_hot,
    "art": _build_art,
    "skiplist": _build_skiplist,
    "bwtree": _build_bwtree,
    "masstree": _build_masstree,
    "hybrid": _build_hybrid,
}

#: The built-in benchmark names (a stable tuple for compatibility with
#: the old ``repro.bench.harness.INDEX_BUILDERS``; dynamically
#: registered names appear in :func:`available_indexes` only).
INDEX_BUILDERS: Tuple[str, ...] = tuple(_BUILDERS)


def register_index(name: str, builder: Callable, *,
                   replace: bool = False) -> None:
    """Register ``builder`` under ``name`` for :func:`build_index`.

    ``builder`` must accept the standard wiring keywords (``table``,
    ``allocator``, ``cost``, ``key_width``, ``size_bound_bytes``) plus
    any extras, and return an
    :class:`~repro.baselines.interface.OrderedIndex`.  Re-registering a
    taken name requires ``replace=True``.
    """
    if not name:
        raise ShardConfigError("index name must be non-empty")
    if name in _BUILDERS and not replace:
        raise ShardConfigError(
            f"index builder {name!r} already registered "
            "(pass replace=True to override)"
        )
    _BUILDERS[name] = builder


def available_indexes() -> Tuple[str, ...]:
    """Every name :func:`build_index` currently accepts."""
    return tuple(_BUILDERS)


def build_index(
    name: str,
    table,
    allocator,
    cost,
    key_width: int,
    size_bound_bytes: Optional[int] = None,
    **kwargs,
):
    """Instantiate an index by its registered name.

    Built-in names: ``stx``, ``elastic`` (requires
    ``size_bound_bytes``), ``seqtree128``, ``stx-seqtree`` /
    ``stx-subtrie`` / ``stx-seqtrie`` (``capacity``, ``levels``,
    ``breathing`` kwargs), ``hot``, ``art``, ``skiplist``, ``bwtree``,
    ``masstree``, ``hybrid`` — plus anything added through
    :func:`register_index`.
    """
    builder = _BUILDERS.get(name)
    if builder is None:
        raise ValueError(f"unknown index {name!r}")
    return builder(
        table=table, allocator=allocator, cost=cost, key_width=key_width,
        size_bound_bytes=size_bound_bytes, **kwargs,
    )


__all__ = [
    "INDEX_BUILDERS",
    "available_indexes",
    "build_index",
    "register_index",
]
