"""Operator tooling: structure inspection and reporting."""

from repro.tools.inspect import (
    cache_summary,
    cluster_summary,
    dump_tree,
    format_size,
    leaf_histogram,
    mlp_summary,
    tuning_summary,
    wal_summary,
)

__all__ = [
    "cache_summary",
    "cluster_summary",
    "dump_tree",
    "format_size",
    "leaf_histogram",
    "mlp_summary",
    "tuning_summary",
    "wal_summary",
]
