"""Operator tooling: structure inspection and reporting."""

from repro.tools.inspect import dump_tree, leaf_histogram, format_size

__all__ = ["dump_tree", "leaf_histogram", "format_size"]
