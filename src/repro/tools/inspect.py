"""Structure inspection: ASCII dumps and leaf histograms.

Debugging/ops aids for the elastic trees: visualize which regions of the
key space are compacted, at what capacity, and how full the leaves are.
"""

from __future__ import annotations

from typing import List

from repro.btree.tree import BPlusTree, InnerNode


def format_size(nbytes: float) -> str:
    """Human-readable byte count."""
    for unit in ("B", "KB", "MB", "GB"):
        if abs(nbytes) < 1024 or unit == "GB":
            return f"{nbytes:.1f} {unit}" if unit != "B" else f"{int(nbytes)} B"
        nbytes /= 1024
    return f"{nbytes:.1f} GB"


def _leaf_label(leaf) -> str:
    kind = "C" if leaf.is_compact else "S"
    bar_width = 12
    filled = int(round(bar_width * leaf.count / max(1, leaf.capacity)))
    bar = "#" * filled + "." * (bar_width - filled)
    return (
        f"[{kind} {leaf.count:>3}/{leaf.capacity:<3} |{bar}| "
        f"{format_size(leaf.size_bytes)}]"
    )


def dump_tree(tree: BPlusTree, max_leaves: int = 40) -> str:
    """ASCII rendering of a B+-tree's structure.

    Inner nodes show separator counts; leaves show representation
    (S=standard, C=compact), occupancy bars and sizes.  Output is
    truncated after ``max_leaves`` leaves.
    """
    lines: List[str] = [
        f"B+-tree: {len(tree)} items, height {tree.height}, "
        f"{format_size(tree.index_bytes)}"
    ]
    emitted = 0

    def walk(node, depth: int) -> None:
        nonlocal emitted
        indent = "  " * depth
        if isinstance(node, InnerNode):
            lines.append(
                f"{indent}inner({len(node.keys)} keys, "
                f"{len(node.children)} children)"
            )
            for child in node.children:
                if emitted > max_leaves:
                    return
                walk(child, depth + 1)
        else:
            emitted += 1
            if emitted == max_leaves + 1:
                lines.append(f"{indent}... (truncated)")
                return
            if emitted <= max_leaves:
                lines.append(f"{indent}{_leaf_label(node)}")

    walk(tree.root, 0)
    return "\n".join(lines)


def leaf_histogram(tree: BPlusTree, buckets: int = 10) -> str:
    """Histogram of leaf occupancy, split by representation."""
    standard = [0] * buckets
    compact = [0] * buckets
    leaf = tree.first_leaf
    while leaf is not None:
        fraction = leaf.count / max(1, leaf.capacity)
        bucket = min(buckets - 1, int(fraction * buckets))
        (compact if leaf.is_compact else standard)[bucket] += 1
        leaf = leaf.next_leaf
    lines = ["occupancy   standard  compact"]
    for i in range(buckets):
        lo, hi = i * 100 // buckets, (i + 1) * 100 // buckets
        lines.append(f"{lo:>3}-{hi}%   {standard[i]:>8}  {compact[i]:>7}")
    return "\n".join(lines)
