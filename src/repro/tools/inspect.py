"""Structure inspection: ASCII dumps, leaf histograms, cache summaries.

Debugging/ops aids for the elastic trees: visualize which regions of the
key space are compacted, at what capacity, how full the leaves are, and
what each shard's adaptive cache is doing with its budget share.
"""

from __future__ import annotations

from typing import List

from repro.btree.tree import BPlusTree, InnerNode


def format_size(nbytes: float) -> str:
    """Human-readable byte count."""
    for unit in ("B", "KB", "MB", "GB"):
        if abs(nbytes) < 1024 or unit == "GB":
            return f"{nbytes:.1f} {unit}" if unit != "B" else f"{int(nbytes)} B"
        nbytes /= 1024
    return f"{nbytes:.1f} GB"


#: Dump glyph per leaf kind; unregistered/third-party kinds show "?".
_KIND_GLYPHS = {"standard": "S", "compact": "C", "learned": "L", "delta": "D"}


def _leaf_label(leaf) -> str:
    kind = _KIND_GLYPHS.get(leaf.kind, "?")
    bar_width = 12
    filled = int(round(bar_width * leaf.count / max(1, leaf.capacity)))
    bar = "#" * filled + "." * (bar_width - filled)
    return (
        f"[{kind} {leaf.count:>3}/{leaf.capacity:<3} |{bar}| "
        f"{format_size(leaf.size_bytes)}]"
    )


def dump_tree(tree: BPlusTree, max_leaves: int = 40) -> str:
    """ASCII rendering of a B+-tree's structure.

    Inner nodes show separator counts; leaves show representation
    (S=standard, C=compact, L=learned), occupancy bars and sizes.
    Output is truncated after ``max_leaves`` leaves.
    """
    lines: List[str] = [
        f"B+-tree: {len(tree)} items, height {tree.height}, "
        f"{format_size(tree.index_bytes)}"
    ]
    cache = getattr(tree, "cache", None)
    if cache is not None:
        report = cache.report()
        lines.append(
            f"cache: {report.row_entries}/{report.row_capacity} rows, "
            f"{report.desc_entries}/{report.desc_capacity} descents, "
            f"{format_size(report.bytes_used)} of "
            f"{format_size(report.budget_bytes)} budget, "
            f"hit rate {report.hit_rate * 100:.1f}%"
        )
    emitted = 0

    def walk(node, depth: int) -> None:
        nonlocal emitted
        indent = "  " * depth
        if isinstance(node, InnerNode):
            lines.append(
                f"{indent}inner({len(node.keys)} keys, "
                f"{len(node.children)} children)"
            )
            for child in node.children:
                if emitted > max_leaves:
                    return
                walk(child, depth + 1)
        else:
            emitted += 1
            if emitted == max_leaves + 1:
                lines.append(f"{indent}... (truncated)")
                return
            if emitted <= max_leaves:
                lines.append(f"{indent}{_leaf_label(node)}")

    walk(tree.root, 0)
    return "\n".join(lines)


def cache_summary(index) -> str:
    """Per-shard adaptive-cache table: occupancy, hit rate, budget share.

    Accepts an unsharded tree (one row) or a
    :class:`~repro.engine.ShardedIndex` (one row per shard).  The budget
    share column relates the cache's budget to the shard's soft bound —
    the fraction of elastic memory the cache is currently winning from
    the leaves.
    """
    shards = getattr(index, "shards", None)
    if shards is None:
        pairs = [("index", index)]
    else:
        pairs = [(shard.name, shard.index) for shard in shards]
    lines = [
        f"{'shard':<12} {'rows':>11} {'descents':>9} {'bytes':>10} "
        f"{'hit rate':>8} {'bound share':>11}"
    ]
    for name, tree in pairs:
        cache = getattr(tree, "cache", None)
        if cache is None:
            lines.append(f"{name:<12} {'(no cache)':>11}")
            continue
        report = cache.report()
        controller = getattr(tree, "controller", None)
        if controller is not None:
            bound = controller.budget.soft_bound_bytes
            share = f"{report.budget_bytes / bound * 100:.1f}%"
        else:
            share = "-"
        lines.append(
            f"{name:<12} {report.row_entries:>5}/{report.row_capacity:<5} "
            f"{report.desc_entries:>4}/{report.desc_capacity:<4} "
            f"{format_size(report.bytes_used):>10} "
            f"{report.hit_rate * 100:>7.1f}% {share:>11}"
        )
    return "\n".join(lines)


def cluster_summary(index) -> str:
    """Per-replica cluster table: profile, health, routing, budget share.

    Accepts a :class:`~repro.cluster.ReplicaSet` (one row per replica)
    or any plain/sharded index (one row, for symmetric tooling).  Shows
    each replica's profile and kind, item/byte footprint, apportioned
    share of the cluster bound, health, and the query classes the
    router currently sends it.
    """
    report = getattr(index, "replica_report", None)
    if report is None:
        rows = [{
            "name": "index", "profile": "-", "kind": "-", "up": True,
            "items": len(index), "index_bytes": index.index_bytes,
            "bound_bytes": 0, "classes": [],
        }]
        total_bound = 0
    else:
        rows = report()
        total_bound = sum(row["bound_bytes"] for row in rows)
    lines = [
        f"{'replica':<16} {'profile':<10} {'kind':<9} {'state':<5} "
        f"{'items':>7} {'bytes':>10} {'bound share':>11} classes"
    ]
    for row in rows:
        if total_bound:
            share = f"{row['bound_bytes'] / total_bound * 100:.1f}%"
        else:
            share = "-"
        classes = ",".join(row["classes"]) or "-"
        lines.append(
            f"{row['name']:<16} {row['profile']:<10} {row['kind']:<9} "
            f"{'up' if row['up'] else 'DOWN':<5} {row['items']:>7} "
            f"{format_size(row['index_bytes']):>10} {share:>11} {classes}"
        )
    return "\n".join(lines)


def mlp_summary(target) -> str:
    """Prefetch-wave accounting summary (see ``CostModel.mlp_window``).

    Accepts a :class:`~repro.memory.CostModel` directly, or any object
    exposing one as ``.cost`` (a tree, a :class:`~repro.engine.
    ShardedIndex`, an :class:`~repro.exec.BatchExecutor`'s index).
    Reports cumulative waves issued, loads overlapped behind another
    load's miss, and cost units saved versus serial pricing.
    """
    cost = getattr(target, "cost", target)
    summary = cost.mlp_summary()
    loads = summary["loads"]
    lines = [
        f"mlp: default width {summary['width']}",
        f"  loads wave-priced   {loads}",
        f"  waves issued        {summary['waves']}",
        f"  loads overlapped    {summary['overlapped']}",
        f"  serial pricing      {summary['serial_units']:.2f} units",
        f"  wave pricing        {summary['wave_units']:.2f} units",
        f"  units saved         {summary['saved_units']:.2f}",
    ]
    if loads:
        saved_pct = summary["saved_units"] / summary["serial_units"] * 100
        lines.append(f"  saving vs serial    {saved_pct:.1f}%")
    return "\n".join(lines)


def wal_summary(target) -> str:
    """Write-ahead-log state table: streams, watermarks, pending tail.

    Accepts a :class:`~repro.db.database.Database` with
    ``Database(wal=WalConfig(...))`` attached, or a
    :class:`~repro.wal.WriteAheadLog` directly.  One header block for
    the log as a whole (group size, snapshot barrier, durable vs
    pending record counts), then one row per stream with its durable
    watermark — pending records past a watermark are exactly what a
    crash would discard.
    """
    wal = getattr(target, "wal", target)
    if wal is None or not hasattr(wal, "summary"):
        return "wal: (not configured)"
    info = wal.summary()
    state = "CRASHED" if info["crashed"] else "open"
    lines = [
        f"wal: {info['records']} records, group size {info['group_size']}, "
        f"{info['shards']} stream(s), {state}",
        f"  durable  {info['durable_records']:>7}",
        f"  pending  {info['pending_records']:>7}",
        f"  snapshot lsn {info['snapshot_lsn']:>5}",
        f"{'stream':<8} {'records':>8} {'durable lsn':>12}",
    ]
    for stream in info["streams"]:
        lines.append(
            f"{stream['stream']:<8} {stream['records']:>8} "
            f"{stream['durable_lsn']:>12}"
        )
    return "\n".join(lines)


def tuning_summary(target) -> str:
    """Self-tuning advisor state table: ticks, probes, fired actions.

    Accepts a :class:`~repro.db.database.Database` with
    ``enable_self_tuning(...)`` active, or a
    :class:`~repro.tuning.SelfTuningAdvisor` directly.  One header block
    for the loop as a whole (ticks ridden on the arbiter clock,
    candidates what-if-priced, billed probe fees), then one row per
    action family that has fired, plus the currently parked indexes and
    the writes they have skipped.
    """
    advisor = getattr(target, "advisor", target)
    if advisor is None or not hasattr(advisor, "stats"):
        return "tuning: (not enabled)"
    stats = advisor.stats
    lines = [
        f"tuning: {stats.ticks} ticks, {stats.candidates_scored} candidates "
        f"scored, {stats.probe_fee_units:.1f} fee units billed",
        f"  actions applied     {stats.actions_applied:>7}",
        f"  apply cost units    {stats.apply_cost_units:>10.2f}",
        f"  modeled saving      {stats.modeled_saving_units:>10.2f}",
        f"  churn events seen   {stats.churn_events:>7}",
        f"  parked writes skip  {stats.parked_writes_skipped:>7}",
    ]
    if stats.actions_by_family:
        lines.append(f"{'action':<14} {'fired':>6}")
        for family in sorted(stats.actions_by_family):
            lines.append(
                f"{family:<14} {stats.actions_by_family[family]:>6}"
            )
    parked = advisor.parked_indexes()
    lines.append(
        "parked: " + (", ".join(parked) if parked else "(none)")
    )
    return "\n".join(lines)


def leaf_histogram(tree: BPlusTree, buckets: int = 10) -> str:
    """Histogram of leaf occupancy, split by representation kind."""
    standard = [0] * buckets
    compact = [0] * buckets
    learned = [0] * buckets
    other = [0] * buckets
    columns = {"standard": standard, "compact": compact, "learned": learned}
    leaf = tree.first_leaf
    while leaf is not None:
        fraction = leaf.count / max(1, leaf.capacity)
        bucket = min(buckets - 1, int(fraction * buckets))
        columns.get(leaf.kind, other)[bucket] += 1
        leaf = leaf.next_leaf
    lines = ["occupancy   standard  compact  learned"]
    for i in range(buckets):
        lo, hi = i * 100 // buckets, (i + 1) * 100 // buckets
        lines.append(
            f"{lo:>3}-{hi}%   {standard[i]:>8}  {compact[i]:>7}  "
            f"{learned[i]:>7}"
        )
    if any(other):
        lines.append(f"(+{sum(other)} leaves of other kinds)")
    return "\n".join(lines)
