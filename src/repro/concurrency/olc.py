"""Discrete-event simulator of Optimistic Lock Coupling execution."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.memory.cost_model import CostModel

#: Shared memory bandwidth, in cache lines per cost unit, across the
#: whole machine.  One core streams ~4 lines/unit (a unit is one DRAM
#: latency); the socket sustains ~90 lines/unit — so ~24 cores' worth of
#: pure streaming saturates it, which is what bends the copy-heavy
#: curves (HOT compound rewrites, SeqTree shifts) past ~16-24 threads.
DEFAULT_BANDWIDTH_LINES_PER_UNIT = 90.0


@dataclass
class OpRecord:
    """One operation's resource profile, captured from a serial run."""

    cost_units: float
    lines: float
    read_set: Tuple[int, ...]
    write_set: Tuple[int, ...]


@dataclass
class ScalingResult:
    """Outcome of simulating one thread count."""

    threads: int
    ops: int
    makespan_units: float
    retries: int

    @property
    def throughput(self) -> float:
        """Operations per cost unit (relative scale)."""
        if self.makespan_units <= 0:
            return 0.0
        return self.ops / self.makespan_units


@dataclass
class MixedScalingResult(ScalingResult):
    """Outcome of a mixed reader/writer simulation (:meth:`OLCSimulator.
    run_mixed`).

    Extends the read-only result with the write side's durability
    accounting: writers serialize their commit records on one log-append
    clock and fsync in groups, so ``log_wait_units`` (time writers spent
    queued behind the log) and ``group_commits`` (fsync barriers
    charged) quantify how group commit trades commit latency for
    barrier amortization under concurrency.
    """

    reader_ops: int = 0
    writer_ops: int = 0
    group_commits: int = 0
    log_wait_units: float = 0.0


def record_ops(
    index,
    operations: Iterable[Callable[[], None]],
    cost_model: CostModel,
) -> List[OpRecord]:
    """Execute ``operations`` serially on the real ``index``, recording
    each one's cost, line volume, and read/write node sets.

    ``index`` must expose ``trace`` (visited node ids) and
    ``last_write_set`` — both the B+-tree family and the HOT model do.
    """
    records: List[OpRecord] = []
    for op in operations:
        index.trace = []
        if hasattr(index, "last_write_set"):
            index.last_write_set = []
        with cost_model.measure() as delta:
            op()
        counts = delta.counts
        lines = (
            counts.get("rand_line", 0)
            + counts.get("seq_line", 0)
            + counts.get("copy_line", 0) * 2  # copies read and write
            + counts.get("key_load", 0)
            + counts.get("key_load_batched", 0)
        )
        records.append(
            OpRecord(
                cost_units=delta.weighted_cost(),
                lines=float(lines),
                read_set=tuple(index.trace),
                write_set=tuple(getattr(index, "last_write_set", ())),
            )
        )
    index.trace = None
    return records


class OLCSimulator:
    """Replays recorded operations on T virtual threads."""

    def __init__(
        self,
        bandwidth_lines_per_unit: float = DEFAULT_BANDWIDTH_LINES_PER_UNIT,
        max_retries: int = 3,
    ) -> None:
        self.bandwidth = bandwidth_lines_per_unit
        self.max_retries = max_retries

    def run(self, records: Sequence[OpRecord], threads: int) -> ScalingResult:
        """Simulate ``records`` distributed over ``threads`` workers."""
        if threads < 1:
            raise ValueError("threads must be >= 1")
        thread_free = [0.0] * threads
        bw_clock = 0.0
        retries = 0
        # Per-node recent write intervals (pruned as time advances).
        write_intervals: Dict[int, List[Tuple[float, float, int]]] = {}
        makespan = 0.0
        for i, record in enumerate(records):
            worker = min(range(threads), key=thread_free.__getitem__)
            start = thread_free[worker]
            duration = record.cost_units
            # Shared-bandwidth service: copies/misses queue on the
            # memory system once aggregate demand exceeds its capacity.
            if record.lines > 0 and self.bandwidth > 0:
                bw_start = max(start, bw_clock)
                bw_time = record.lines / self.bandwidth
                bw_clock = bw_start + bw_time
                end = max(start + duration, bw_clock)
            else:
                end = start + duration
            # OLC conflict detection: any traversed or written node with
            # a concurrent write by another worker forces a restart.
            attempt = 0
            touched = record.read_set + record.write_set
            while attempt < self.max_retries:
                conflict = False
                for node in touched:
                    for (ws, we, owner) in write_intervals.get(node, ()):
                        if owner != worker and ws < end and we > start:
                            conflict = True
                            break
                    if conflict:
                        break
                if not conflict:
                    break
                retries += 1
                attempt += 1
                end += record.cost_units  # redo the work
            for node in record.write_set:
                bucket = write_intervals.setdefault(node, [])
                bucket.append((start, end, worker))
                if len(bucket) > 8:
                    del bucket[: len(bucket) - 8]
            thread_free[worker] = end
            if end > makespan:
                makespan = end
            # Periodically prune stale intervals to bound memory.
            if i % 4096 == 4095:
                horizon = min(thread_free)
                for node in list(write_intervals):
                    kept = [iv for iv in write_intervals[node] if iv[1] >= horizon]
                    if kept:
                        write_intervals[node] = kept
                    else:
                        del write_intervals[node]
        return ScalingResult(
            threads=threads,
            ops=len(records),
            makespan_units=makespan,
            retries=retries,
        )

    def run_mixed(
        self,
        records: Sequence[OpRecord],
        threads: int,
        group_size: int = 1,
        append_units: Optional[float] = None,
        fsync_units: Optional[float] = None,
    ) -> MixedScalingResult:
        """Simulate a mixed reader/writer recording with a shared WAL.

        Ops with a non-empty ``write_set`` are writers: besides the OLC
        conflict rules of :meth:`run`, each one appends a commit record
        to a single log whose tail is a serial resource (the append
        clock), paying ``append_units`` there.  Every ``group_size``-th
        append closes a commit group and additionally pays
        ``fsync_units`` on the log clock — the group-commit barrier —
        and a final partial group, if any, is flushed at the end of the
        simulation.  Readers never touch the log.

        ``append_units`` / ``fsync_units`` default to the
        ``log_append`` / ``log_fsync`` weights of a fresh
        :class:`~repro.memory.cost_model.CostModel`, so the simulator
        prices durability exactly like the real write path.
        """
        if threads < 1:
            raise ValueError("threads must be >= 1")
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        weights = CostModel().weights
        if append_units is None:
            append_units = weights.log_append
        if fsync_units is None:
            fsync_units = weights.log_fsync
        thread_free = [0.0] * threads
        bw_clock = 0.0
        log_clock = 0.0
        retries = 0
        reader_ops = 0
        writer_ops = 0
        group_commits = 0
        log_wait = 0.0
        pending_in_group = 0
        write_intervals: Dict[int, List[Tuple[float, float, int]]] = {}
        makespan = 0.0
        for i, record in enumerate(records):
            worker = min(range(threads), key=thread_free.__getitem__)
            start = thread_free[worker]
            duration = record.cost_units
            if record.lines > 0 and self.bandwidth > 0:
                bw_start = max(start, bw_clock)
                bw_time = record.lines / self.bandwidth
                bw_clock = bw_start + bw_time
                end = max(start + duration, bw_clock)
            else:
                end = start + duration
            attempt = 0
            touched = record.read_set + record.write_set
            while attempt < self.max_retries:
                conflict = False
                for node in touched:
                    for (ws, we, owner) in write_intervals.get(node, ()):
                        if owner != worker and ws < end and we > start:
                            conflict = True
                            break
                    if conflict:
                        break
                if not conflict:
                    break
                retries += 1
                attempt += 1
                end += record.cost_units  # redo the work
            if record.write_set:
                writer_ops += 1
                # Serialize on the log tail: the commit record cannot
                # land before both the writer and the log are free.
                log_start = max(end, log_clock)
                log_wait += log_start - end
                log_clock = log_start + append_units
                pending_in_group += 1
                if pending_in_group >= group_size:
                    log_clock += fsync_units
                    group_commits += 1
                    pending_in_group = 0
                end = log_clock
            else:
                reader_ops += 1
            for node in record.write_set:
                bucket = write_intervals.setdefault(node, [])
                bucket.append((start, end, worker))
                if len(bucket) > 8:
                    del bucket[: len(bucket) - 8]
            thread_free[worker] = end
            if end > makespan:
                makespan = end
            if i % 4096 == 4095:
                horizon = min(thread_free)
                for node in list(write_intervals):
                    kept = [iv for iv in write_intervals[node] if iv[1] >= horizon]
                    if kept:
                        write_intervals[node] = kept
                    else:
                        del write_intervals[node]
        if pending_in_group:
            # Flush the trailing partial group (checkpoint barrier).
            log_clock += fsync_units
            group_commits += 1
            if log_clock > makespan:
                makespan = log_clock
        return MixedScalingResult(
            threads=threads,
            ops=len(records),
            makespan_units=makespan,
            retries=retries,
            reader_ops=reader_ops,
            writer_ops=writer_ops,
            group_commits=group_commits,
            log_wait_units=log_wait,
        )

    def sweep(
        self, records: Sequence[OpRecord], thread_counts: Iterable[int]
    ) -> List[ScalingResult]:
        """Simulate several thread counts over the same recording."""
        return [self.run(records, t) for t in thread_counts]
