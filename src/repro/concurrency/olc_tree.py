"""A B+-tree with Optimistic Lock Coupling, under cooperative scheduling.

This is the BTreeOLC substrate of the paper's multi-threaded experiments
(section 6.2, after Leis et al. [17] and Wang et al. [31]), implemented
with *real* OLC semantics: every node carries a version counter and a
lock bit; readers validate versions after reading and restart on
conflict; writers lock optimistically and bump versions.

Concurrency is simulated cooperatively: operations are generators that
``yield`` before every synchronization primitive, and a seeded
:class:`Scheduler` interleaves them arbitrarily.  This preserves every
race the protocol must tolerate (torn descents, splits under a reader's
feet, root replacement) while remaining fully deterministic per seed —
the property the linearizability tests rely on.

Scope matches the paper's experiment: inserts (with preventive splits),
lookups, and leaf scans; no deletes (the YCSB phases used in Figure 7
are load + read/scan/update transactions).
"""

from __future__ import annotations

import bisect
from typing import Generator, List, Optional, Tuple

from repro.memory.cost_model import CostModel, NULL_COST_MODEL


class Restart(Exception):
    """Raised when an optimistic validation fails; the op restarts."""


class OLCNode:
    """A node guarded by a version counter and a lock bit."""

    __slots__ = ("keys", "payload", "next_leaf", "is_leaf", "version",
                 "locked")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.keys: List[bytes] = []
        #: Children for inner nodes; tuple ids for leaves.
        self.payload: list = []
        self.next_leaf: Optional["OLCNode"] = None
        self.version = 0
        self.locked = False

    # -- OLC primitives (callers yield to the scheduler before each) ----
    def read_version(self) -> int:
        if self.locked:
            raise Restart()
        return self.version

    def validate(self, version: int) -> None:
        if self.locked or self.version != version:
            raise Restart()

    def upgrade(self, version: int) -> None:
        """Acquire the write lock iff unchanged since ``version``."""
        if self.locked or self.version != version:
            raise Restart()
        self.locked = True

    def unlock(self, changed: bool = True) -> None:
        assert self.locked
        if changed:
            self.version += 1
        self.locked = False


class OLCBPlusTree:
    """B+-tree whose operations are OLC generator coroutines.

    Synchronous wrappers (`insert`, `lookup`, `scan`) run an operation to
    completion without interleaving; the ``*_op`` generators are what the
    :class:`Scheduler` drives concurrently.
    """

    def __init__(self, capacity: int = 8,
                 cost_model: CostModel = NULL_COST_MODEL) -> None:
        if capacity < 4:
            raise ValueError("capacity too small")
        self.capacity = capacity
        self.cost = cost_model
        #: The root pointer is itself OLC-guarded (root replacement).
        self._root_holder = OLCNode(is_leaf=False)
        self._root_holder.payload = [OLCNode(is_leaf=True)]
        self.restarts = 0

    # ------------------------------------------------------------------
    # Coroutine operations
    # ------------------------------------------------------------------
    def insert_op(
        self, key: bytes, tid: int
    ) -> Generator[None, None, Optional[int]]:
        """Insert coroutine; returns the replaced tid if any."""
        while True:
            try:
                return (yield from self._insert_attempt(key, tid))
            except Restart:
                self.restarts += 1
                yield  # back off one step before retrying

    def _insert_attempt(self, key: bytes, tid: int):
        holder = self._root_holder
        yield
        hv = holder.read_version()
        node: OLCNode = holder.payload[0]
        yield
        v = node.read_version()
        yield
        # The root pointer we followed must not have been replaced.
        holder.validate(hv)
        parent: OLCNode = holder
        pv = hv
        parent_idx = 0
        while True:
            # Preventive split: a full node on the descent path is split
            # now, while only (parent, node) need locking — this is what
            # keeps OLC inserts single-level (Leis et al.).
            if len(node.keys) >= self.capacity:
                yield
                parent.upgrade(pv)
                try:
                    yield
                    node.upgrade(v)
                except Restart:
                    parent.unlock(changed=False)
                    raise
                self._split_child(parent, parent_idx, node)
                node.unlock()
                parent.unlock()
                raise Restart()  # re-descend through the new separator
            if node.is_leaf:
                yield
                node.upgrade(v)
                # The path to this leaf may have changed while we
                # descended; the version check above is the only guard
                # we need — the leaf's own contents are now stable.
                pos = bisect.bisect_left(node.keys, key)
                self.cost.compares(max(1, len(node.keys)).bit_length())
                if pos < len(node.keys) and node.keys[pos] == key:
                    old = node.payload[pos]
                    node.payload[pos] = tid
                    node.unlock()
                    return old
                node.keys.insert(pos, key)
                node.payload.insert(pos, tid)
                node.unlock()
                return None
            idx = bisect.bisect_right(node.keys, key)
            self.cost.compares(max(1, len(node.keys)).bit_length())
            self.cost.rand_lines(1)
            child: OLCNode = node.payload[idx]
            yield
            cv = child.read_version()
            yield
            node.validate(v)  # the child pointer we read was consistent
            parent, pv, parent_idx = node, v, idx
            node, v = child, cv

    def _split_child(self, parent: OLCNode, idx: int, node: OLCNode) -> None:
        """Split ``node`` (locked) under ``parent`` (locked)."""
        mid = len(node.keys) // 2
        right = OLCNode(node.is_leaf)
        if node.is_leaf:
            right.keys = node.keys[mid:]
            right.payload = node.payload[mid:]
            separator = right.keys[0]
            del node.keys[mid:]
            del node.payload[mid:]
            right.next_leaf = node.next_leaf
            node.next_leaf = right
        else:
            separator = node.keys[mid]
            right.keys = node.keys[mid + 1 :]
            right.payload = node.payload[mid + 1 :]
            del node.keys[mid:]
            del node.payload[mid + 1 :]
        self.cost.copy_bytes(len(right.keys) * 16)
        if parent is self._root_holder:
            if len(parent.payload) == 1 and parent.payload[0] is node:
                new_root = OLCNode(is_leaf=False)
                new_root.keys = [separator]
                new_root.payload = [node, right]
                parent.payload[0] = new_root
            else:  # the holder's child is an inner root: treat normally
                root = parent.payload[0]
                pos = bisect.bisect_right(root.keys, separator)
                root.keys.insert(pos, separator)
                root.payload.insert(pos + 1, right)
        else:
            parent.keys.insert(idx, separator)
            parent.payload.insert(idx + 1, right)

    def remove_op(
        self, key: bytes
    ) -> Generator[None, None, Optional[int]]:
        """Delete coroutine; returns the removed tid if present.

        Like most OLC B-trees, deletes only lock the leaf and tolerate
        underfull leaves (no concurrent merges) — structure-shrinking
        maintenance is left to offline reorganization.
        """
        while True:
            try:
                return (yield from self._remove_attempt(key))
            except Restart:
                self.restarts += 1
                yield

    def _remove_attempt(self, key: bytes):
        holder = self._root_holder
        yield
        hv = holder.read_version()
        node: OLCNode = holder.payload[0]
        yield
        v = node.read_version()
        yield
        holder.validate(hv)
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            self.cost.compares(max(1, len(node.keys)).bit_length())
            self.cost.rand_lines(1)
            child: OLCNode = node.payload[idx]
            yield
            cv = child.read_version()
            yield
            node.validate(v)
            node, v = child, cv
        yield
        node.upgrade(v)
        pos = bisect.bisect_left(node.keys, key)
        if pos < len(node.keys) and node.keys[pos] == key:
            tid = node.payload[pos]
            del node.keys[pos]
            del node.payload[pos]
            node.unlock()
            return tid
        node.unlock(changed=False)
        return None

    def lookup_op(
        self, key: bytes
    ) -> Generator[None, None, Optional[int]]:
        while True:
            try:
                return (yield from self._lookup_attempt(key))
            except Restart:
                self.restarts += 1
                yield

    def _lookup_attempt(self, key: bytes):
        holder = self._root_holder
        yield
        hv = holder.read_version()
        node: OLCNode = holder.payload[0]
        yield
        v = node.read_version()
        yield
        holder.validate(hv)
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            self.cost.compares(max(1, len(node.keys)).bit_length())
            self.cost.rand_lines(1)
            child: OLCNode = node.payload[idx]
            yield
            cv = child.read_version()
            yield
            node.validate(v)
            node, v = child, cv
        pos = bisect.bisect_left(node.keys, key)
        found = pos < len(node.keys) and node.keys[pos] == key
        result = node.payload[pos] if found else None
        yield
        node.validate(v)  # the leaf was stable while we read it
        return result

    def scan_op(
        self, start_key: bytes, count: int
    ) -> Generator[None, None, List[Tuple[bytes, int]]]:
        while True:
            try:
                return (yield from self._scan_attempt(start_key, count))
            except Restart:
                self.restarts += 1
                yield

    def _scan_attempt(self, start_key: bytes, count: int):
        holder = self._root_holder
        yield
        hv = holder.read_version()
        node: OLCNode = holder.payload[0]
        yield
        v = node.read_version()
        yield
        holder.validate(hv)
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, start_key)
            child: OLCNode = node.payload[idx]
            yield
            cv = child.read_version()
            yield
            node.validate(v)
            node, v = child, cv
        out: List[Tuple[bytes, int]] = []
        lower = start_key
        while node is not None and len(out) < count:
            pos = bisect.bisect_left(node.keys, lower)
            chunk = list(zip(node.keys[pos:], node.payload[pos:]))
            nxt = node.next_leaf
            yield
            node.validate(v)  # chunk + next pointer were consistent
            out.extend(chunk[: count - len(out)])
            node = nxt
            if node is not None:
                self.cost.rand_lines(1)
                yield
                v = node.read_version()
                if node.keys:
                    lower = node.keys[0]
        return out

    # ------------------------------------------------------------------
    # Synchronous wrappers (single-threaded use / test oracles)
    # ------------------------------------------------------------------
    def _run(self, gen):
        try:
            while True:
                next(gen)
        except StopIteration as stop:
            return stop.value

    def insert(self, key: bytes, tid: int) -> Optional[int]:
        return self._run(self.insert_op(key, tid))

    def lookup(self, key: bytes) -> Optional[int]:
        return self._run(self.lookup_op(key))

    def remove(self, key: bytes) -> Optional[int]:
        return self._run(self.remove_op(key))

    def scan(self, start_key: bytes, count: int) -> List[Tuple[bytes, int]]:
        return self._run(self.scan_op(start_key, count))

    def __len__(self) -> int:
        node = self._leftmost_leaf()
        total = 0
        while node is not None:
            total += len(node.keys)
            node = node.next_leaf
        return total

    def _leftmost_leaf(self) -> OLCNode:
        node: OLCNode = self._root_holder.payload[0]
        while not node.is_leaf:
            node = node.payload[0]
        return node

    def items(self) -> List[Tuple[bytes, int]]:
        out: List[Tuple[bytes, int]] = []
        node = self._leftmost_leaf()
        while node is not None:
            out.extend(zip(node.keys, node.payload))
            node = node.next_leaf
        return out

    def check_invariants(self) -> None:
        """Quiescent structural checks (no concurrent ops running)."""

        def walk(node: OLCNode, lo: Optional[bytes], hi: Optional[bytes]):
            assert not node.locked, "lock leaked"
            assert node.keys == sorted(node.keys)
            assert len(node.keys) <= self.capacity
            for key in node.keys:
                if lo is not None:
                    assert key >= lo
                if hi is not None:
                    assert key < hi
            if node.is_leaf:
                assert len(node.payload) == len(node.keys)
                return [node]
            assert len(node.payload) == len(node.keys) + 1
            leaves = []
            for i, child in enumerate(node.payload):
                child_lo = node.keys[i - 1] if i > 0 else lo
                child_hi = node.keys[i] if i < len(node.keys) else hi
                leaves.extend(walk(child, child_lo, child_hi))
            return leaves

        leaves = walk(self._root_holder.payload[0], None, None)
        chain = []
        node = self._leftmost_leaf()
        while node is not None:
            chain.append(node)
            node = node.next_leaf
        assert chain == leaves, "leaf chain disagrees with tree"


class Scheduler:
    """Drives operation coroutines under a seeded random interleaving."""

    def __init__(self, seed: int = 0) -> None:
        import random

        self._rng = random.Random(seed)
        self._ops: List[Tuple[int, Generator]] = []
        self._results = {}
        self._next_id = 0

    def spawn(self, gen: Generator) -> int:
        """Register an operation; returns its id for result retrieval."""
        op_id = self._next_id
        self._next_id += 1
        self._ops.append((op_id, gen))
        return op_id

    def run(self, max_steps: int = 10_000_000) -> dict:
        """Interleave all spawned ops to completion; returns results."""
        steps = 0
        while self._ops:
            steps += 1
            if steps > max_steps:
                raise RuntimeError("scheduler exceeded max steps (livelock?)")
            idx = self._rng.randrange(len(self._ops))
            op_id, gen = self._ops[idx]
            try:
                next(gen)
            except StopIteration as stop:
                self._results[op_id] = stop.value
                self._ops.pop(idx)
        results = self._results
        self._results = {}
        return results
