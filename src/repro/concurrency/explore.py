"""Bounded model checking of OLC operations: exhaustive interleavings.

The cooperative-coroutine design of :mod:`repro.concurrency.olc_tree`
makes schedules first-class: an execution is fully determined by the
sequence of "which operation advances next" choices.  This module
enumerates *every* such schedule for a small scenario (depth-first with
replay, odometer-style), validating an assertion after each one — a
bounded model checker for the lock-coupling protocol.

Exhaustive exploration is exponential in total step count, so scenarios
must be tiny (2-3 operations on a near-full node); ``max_schedules``
bounds the effort and the result reports whether the space was covered
completely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Sequence, Tuple

#: A scenario factory returns fresh operation generators plus a
#: validation callback run against {op index: result} after completion.
ScenarioFactory = Callable[
    [], Tuple[Sequence[Generator], Callable[[Dict[int, object]], None]]
]


@dataclass
class ExplorationResult:
    """Outcome of a schedule-space exploration."""

    schedules_run: int
    complete: bool
    max_steps_seen: int

    def __str__(self) -> str:
        coverage = "exhaustive" if self.complete else "partial"
        return (
            f"{self.schedules_run} schedules ({coverage}), longest "
            f"execution {self.max_steps_seen} steps"
        )


def explore_schedules(
    factory: ScenarioFactory,
    max_schedules: int = 200_000,
    max_steps: int = 10_000,
) -> ExplorationResult:
    """Run ``factory``'s scenario under every possible interleaving.

    Raises whatever the scenario's validator raises on the first
    violating schedule (the failing choice sequence is attached to the
    exception for reproduction).
    """
    prefix: List[int] = []
    schedules_run = 0
    longest = 0
    while True:
        generators, validate = factory()
        active: List[Tuple[int, Generator]] = list(enumerate(generators))
        results: Dict[int, object] = {}
        trace: List[Tuple[int, int]] = []  # (choice, branching degree)
        step = 0
        while active:
            if step >= max_steps:
                raise RuntimeError(
                    f"schedule exceeded {max_steps} steps: "
                    f"{[c for c, _ in trace[:50]]}..."
                )
            degree = len(active)
            choice = prefix[step] if step < len(prefix) else 0
            trace.append((choice, degree))
            op_id, gen = active[choice]
            try:
                next(gen)
            except StopIteration as stop:
                results[op_id] = stop.value
                active.pop(choice)
            step += 1
        longest = max(longest, step)
        try:
            validate(results)
        except AssertionError as failure:
            failure.args = (
                f"{failure.args[0] if failure.args else 'violation'} "
                f"[schedule={[c for c, _ in trace]}]",
            )
            raise
        schedules_run += 1
        if schedules_run >= max_schedules:
            return ExplorationResult(schedules_run, False, longest)
        # Odometer: advance the deepest choice that still has siblings.
        for position in range(len(trace) - 1, -1, -1):
            choice, degree = trace[position]
            if choice + 1 < degree:
                prefix = [c for c, _ in trace[:position]] + [choice + 1]
                break
        else:
            return ExplorationResult(schedules_run, True, longest)


def replay_schedule(
    factory: ScenarioFactory, schedule: Sequence[int]
) -> Dict[int, object]:
    """Re-run one specific choice sequence (reproducing a failure)."""
    generators, validate = factory()
    active: List[Tuple[int, Generator]] = list(enumerate(generators))
    results: Dict[int, object] = {}
    step = 0
    while active:
        choice = schedule[step] if step < len(schedule) else 0
        choice = min(choice, len(active) - 1)
        op_id, gen = active[choice]
        try:
            next(gen)
        except StopIteration as stop:
            results[op_id] = stop.value
            active.pop(choice)
        step += 1
    validate(results)
    return results
