"""Multi-threaded execution simulator (paper section 6.2, Figures 7b-c).

Substitution (DESIGN.md): CPython's GIL makes real multi-threaded index
benchmarks meaningless, so the multi-threaded experiments run on a
discrete-event simulator of Optimistic Lock Coupling [17]:

* every operation is first executed serially on the *real* index,
  recording its weighted cost, its cache-line volume, the node ids it
  read (the OLC version-check read set), and the node ids it wrote;
* the simulator then replays the recorded operations on T virtual
  threads: a reader whose execution window overlaps a concurrent
  writer's interval on a shared node restarts (the OLC retry), and all
  threads share a finite memory-bandwidth resource.

Read-mostly workloads scale near-linearly (rare conflicts); inserts
saturate on retries at shared upper nodes and on bandwidth (copy-heavy
indexes saturate earlier) — the two effects behind Figure 7's shapes.
"""

from repro.concurrency.olc import (
    MixedScalingResult,
    OLCSimulator,
    OpRecord,
    ScalingResult,
    record_ops,
)
from repro.concurrency.olc_tree import OLCBPlusTree, Scheduler, Restart

__all__ = [
    "MixedScalingResult",
    "OLCSimulator",
    "OpRecord",
    "ScalingResult",
    "record_ops",
    "OLCBPlusTree",
    "Scheduler",
    "Restart",
]
