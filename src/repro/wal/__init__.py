"""repro.wal — modeled write-ahead logging and crash recovery.

The durable write pipeline behind the transactional write surface
(:meth:`Database.begin_batch <repro.db.database.Database.begin_batch>`):
a per-shard group-committed log (:mod:`repro.wal.log`) priced through
the ``log_append`` / ``log_fsync`` cost categories, plus snapshot +
log-replay recovery (:mod:`repro.wal.recovery`) with a kill-and-recover
differential guarantee — replayed state equals the durably-committed
prefix of the pre-crash state, byte for byte.
"""

from repro.wal.log import (
    RECORD_HEADER_BYTES,
    CrashError,
    TableSnapshot,
    WalConfig,
    WalRecord,
    WalShard,
    WriteAheadLog,
)
from repro.wal.recovery import (
    RecoveryReport,
    recover_database,
    state_digest,
)

__all__ = [
    "CrashError",
    "RECORD_HEADER_BYTES",
    "RecoveryReport",
    "TableSnapshot",
    "WalConfig",
    "WalRecord",
    "WalShard",
    "WriteAheadLog",
    "recover_database",
    "state_digest",
]
