"""Snapshot + log-replay crash recovery (``repro.wal.recovery``).

A crash (a :class:`~repro.wal.log.CrashError` raised at a scripted kill
point) loses everything volatile: in-memory tables, every index, any
appended-but-unfsynced log suffix.  What survives is what the modeled
stable media holds — the checkpoint image installed by
:meth:`Database.snapshot <repro.db.database.Database.snapshot>` (if
any) and the log's durable record prefix.  :func:`recover_database`
rebuilds a fresh database from exactly that:

1. **DDL replay** — the crashed database's recorded schema history
   (``create_table`` / ``create_index`` / ``enable_budget_arbiter``
   calls) re-creates empty tables and indexes;
2. **snapshot restore** — each table's checkpoint image is copied back
   (rows, dead slots, and free-tid stack order, so later replay
   re-derives the exact tuple ids the original run assigned), and the
   indexes are back-filled from the restored rows;
3. **log replay** — the durable records above the snapshot lsn re-apply
   in lsn order through the scalar write path.  The *durable-prefix
   rule*: replay stops at the first non-durable lsn, because a durable
   record above a torn one cannot be applied without corrupting
   tuple-id assignment; everything past the gap is discarded and
   counted in the :class:`RecoveryReport`.

Replay cost is measured on the fresh database's cost model and
attributed to the ``"recovery"`` tag; the replayed records carry into
the new log already durable (they were fsynced in their prior life), so
recovering a recovered database is stable — recovery is idempotent,
which the test suite checks as a hypothesis property.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro import obs
from repro.errors import RecoveryError
from repro.memory.cost_model import CostModel
from repro.obs import RecoveryReplayEvent
from repro.wal.log import WalConfig

if TYPE_CHECKING:  # import cycle: repro.db imports repro.wal.log
    from repro.db.database import Database


@dataclass(frozen=True)
class RecoveryReport:
    """What one :func:`recover_database` call rebuilt and replayed."""

    records_replayed: int
    records_discarded: int
    snapshot_lsn: int
    durable_lsn: int
    tables: int
    indexes: int
    cost_units: float


def recover_database(db: Database) -> "tuple[Database, RecoveryReport]":
    """Rebuild a fresh database from ``db``'s durable state.

    ``db`` is the crashed (or simply abandoned) database; it must have
    a write-ahead log, else there is nothing durable to recover from
    and :class:`~repro.errors.RecoveryError` is raised.  Returns the
    recovered database — a new process's view, with its own fresh cost
    model (same weights) and a fault-free log carrying the replayed
    records — plus the :class:`RecoveryReport`.
    """
    from repro.db.database import Database

    wal = db.wal
    if wal is None:
        raise RecoveryError(
            "database has no write-ahead log; nothing durable to recover"
        )
    config = WalConfig(
        group_size=wal.config.group_size, shards=wal.config.shards
    )
    new_db = Database(
        cost_model=CostModel(weights=db.cost.weights), wal=config
    )

    durable = wal.durable_prefix()
    discarded = len(wal.records) - len(durable)
    durable_lsn = durable[-1].lsn if durable else -1
    snapshot_lsn = wal.snapshot_lsn

    with new_db.cost.measure() as delta:
        with new_db.cost.attributed_to("recovery"):
            # 1. DDL replay: empty tables and indexes.
            for entry in db._ddl:
                if entry[0] == "create_table":
                    new_db.create_table(entry[1])
                elif entry[0] == "create_index":
                    _, table_name, name, columns, kwargs = entry
                    new_db.tables[table_name].create_index(
                        name, columns, **kwargs
                    )
                elif entry[0] == "enable_budget_arbiter":
                    new_db.enable_budget_arbiter(entry[1], **entry[2])
                elif entry[0] == "enable_self_tuning":
                    # The advisor's learned windows are volatile; the
                    # recovered database restarts the loop fresh under
                    # the same configuration.
                    new_db.enable_self_tuning(entry[1])

            # 2. Snapshot restore: checkpoint rows back into place,
            # then back-fill the (empty) indexes from them.
            if wal.snapshot_tables is not None:
                for table_name, snap in wal.snapshot_tables.items():
                    if table_name not in new_db.tables:
                        raise RecoveryError(
                            f"snapshot references unknown table "
                            f"{table_name!r}"
                        )
                    dbtable = new_db.tables[table_name]
                    store = dbtable.table
                    store._rows = list(snap.rows)
                    store._free_tids = list(snap.free_tids)
                    store._live_rows = snap.live_rows
                    new_db.allocator.allocate(
                        snap.live_rows * store.row_bytes, "table"
                    )
                    new_db.cost.copy_bytes(
                        snap.live_rows * store.row_bytes
                    )
                    for secondary in dbtable.indexes.values():
                        for tid, row in store.iter_live():
                            secondary.index.insert(
                                secondary.key_of_row(row), tid
                            )

            # 3. Durable-log replay above the snapshot, in lsn order.
            replayed = 0
            for record in durable:
                if record.lsn <= snapshot_lsn:
                    continue
                if record.table not in new_db.tables:
                    raise RecoveryError(
                        f"log record {record.lsn} references unknown "
                        f"table {record.table!r}"
                    )
                dbtable = new_db.tables[record.table]
                if record.op == "insert":
                    dbtable._apply_insert(tuple(record.payload))
                elif record.op == "delete":
                    dbtable._apply_delete(record.payload)
                else:
                    raise RecoveryError(
                        f"log record {record.lsn} has unknown op "
                        f"{record.op!r}"
                    )
                new_db._tick(1)
                replayed += 1

    # The replayed records were durable in their prior life; carry them
    # (and the checkpoint) into the new log uncharged, so the recovered
    # database is itself recoverable and re-recovery is a fixed point.
    assert new_db.wal is not None
    new_db.wal.adopt(durable)
    if wal.snapshot_tables is not None:
        new_db.wal.install_snapshot(wal.snapshot_tables, snapshot_lsn)

    n_indexes = sum(len(t.indexes) for t in new_db.tables.values())
    report = RecoveryReport(
        records_replayed=replayed,
        records_discarded=discarded,
        snapshot_lsn=snapshot_lsn,
        durable_lsn=durable_lsn,
        tables=len(new_db.tables),
        indexes=n_indexes,
        cost_units=delta.weighted_cost(),
    )
    if obs.is_enabled():
        obs.emit(RecoveryReplayEvent(
            records_replayed=report.records_replayed,
            records_discarded=report.records_discarded,
            snapshot_lsn=report.snapshot_lsn,
            durable_lsn=report.durable_lsn,
            tables=report.tables,
            indexes=n_indexes,
            cost_units=report.cost_units,
        ))
    return new_db, report


def state_digest(db: Database) -> bytes:
    """Canonical content digest of every table and index in ``db``.

    The kill-and-recover differential's equality check: live rows with
    their tuple ids, the free-tid stack order, and every index's full
    scan output, hashed in sorted name order.  Two databases with equal
    digests hold byte-identical logical state — same rows under the
    same tuple ids, same index contents.  Computed with cost charging
    paused, so taking a digest never perturbs the ledger.
    """
    h = hashlib.sha256()
    with db.cost.paused():
        for table_name in sorted(db.tables):
            dbtable = db.tables[table_name]
            store = dbtable.table
            h.update(f"table {table_name}\n".encode())
            for tid, row in store.iter_live():
                h.update(repr((tid, tuple(row))).encode())
            h.update(repr(list(store._free_tids)).encode())
            for index_name in sorted(dbtable.indexes):
                secondary = dbtable.indexes[index_name]
                h.update(f"index {index_name}\n".encode())
                count = len(store)
                items = []
                if count:
                    items = secondary.index.scan(
                        b"\x00" * secondary.key_width, count
                    )
                h.update(repr(list(items)).encode())
    return h.digest()
