"""Per-shard write-ahead log with group commit (``repro.wal``).

Durability is modeled, not performed: no file is ever opened.  The log
is the same kind of deterministic substitute the cost model is for
wall-clock time — appends and fsyncs charge the ``log_append`` /
``log_fsync`` cost categories, durable watermarks advance exactly as a
real group-committed log's would, and a scripted
:meth:`~repro.engine.faults.FaultPlan.kill` point raises
:class:`CrashError` at a precise, replayable instant.  Everything the
log retains (records, watermarks, snapshots) plays the role of stable
media; everything else in the database (tables, indexes, caches) is
volatile and deemed lost at a crash.

Layout.  One :class:`WriteAheadLog` owns ``config.shards`` independent
:class:`WalShard` streams — the per-shard logs of a partitioned engine.
Records take global, contiguous lsns and route to stream
``lsn % shards``, so the global commit order is recoverable from the
streams alone.

Group commit.  Appending a record makes it *visible* in the log buffer
(one ``log_append``); it becomes *durable* only when an fsync barrier
covers it.  Barriers are scheduled over consecutive lsn groups of
``config.group_size`` records: each full group charges one
``log_fsync`` per distinct stream it touches and advances those
streams' durable watermarks.  A commit group therefore amortizes the
dominant fsync latency across ``group_size`` writes — mirroring how
``wave_issue`` amortizes one miss latency across a prefetch wave — and
a partial group stays volatile until more records arrive or
:meth:`WriteAheadLog.flush` forces it out.  Losing the volatile suffix
at a crash is the price of group commit; recovery replays exactly the
durable prefix (see :mod:`repro.wal.recovery`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.engine.faults import FaultPlan
from repro.errors import WalError
from repro.memory.cost_model import CostModel
from repro.obs import GroupCommitEvent

#: Modeled on-media size of a record header (lsn + op/table tag).
RECORD_HEADER_BYTES = 16


class CrashError(RuntimeError):
    """A scripted kill point fired: the process is (simulatedly) dead.

    Deliberately **not** a :class:`~repro.errors.ReproError`: a crash is
    not an input error, and must never be swallowed by the library's
    ``except ValueError`` handlers.  Catch it explicitly, then hand the
    crashed database to :func:`repro.wal.recovery.recover_database`.
    """


@dataclass(frozen=True)
class WalConfig:
    """Write-ahead-log configuration for one :class:`~repro.db.database.
    Database`.

    Attributes:
        group_size: Records per commit group — the fsync amortization
            unit.  ``1`` models per-operation fsync (every record pays
            the full barrier); ``64`` (default) is the group-commit
            sweet spot the ``wal`` experiment gates on.
        shards: Independent log streams.  Matches a partitioned
            engine's shard count when log bandwidth is the concern;
            ``1`` (default) is a single global log.
        faults: Optional :class:`~repro.engine.faults.FaultPlan` whose
            scripted :meth:`~repro.engine.faults.FaultPlan.kill` points
            this log consults after every append, fsync, and applied
            operation.
    """

    group_size: int = 64
    shards: int = 1
    faults: Optional[FaultPlan] = None

    def validate(self) -> None:
        if self.group_size < 1:
            raise WalError("wal group_size must be >= 1")
        if self.shards < 1:
            raise WalError("wal shards must be >= 1")


@dataclass
class WalRecord:
    """One logical redo record.

    ``op`` is ``"insert"`` (``payload`` is the row tuple; the tuple id
    is re-derived at replay from the table's deterministic free-list
    order) or ``"delete"`` (``payload`` is the tuple id).  ``nbytes``
    is the modeled on-media size: payload bytes plus
    :data:`RECORD_HEADER_BYTES`.
    """

    lsn: int
    op: str
    table: str
    payload: Any
    nbytes: int


@dataclass
class WalShard:
    """One log stream: an ordered record list plus a durable watermark.

    ``durable_lsn`` is the highest lsn on this stream covered by a
    completed fsync barrier (-1 before the first); every record of the
    stream at or below it survives a crash.
    """

    stream: int
    records: List[WalRecord] = field(default_factory=list)
    durable_lsn: int = -1


@dataclass
class TableSnapshot:
    """A checkpoint image of one table's row store.

    Captures the physical layout — the row slot array including dead
    (``None``) holes and the free-tid stack order — so replaying
    post-snapshot records re-derives the exact tuple ids the original
    run assigned.
    """

    rows: List[Any]
    free_tids: List[int]
    live_rows: int


class WriteAheadLog:
    """The database's modeled write-ahead log (all streams).

    Built by :class:`~repro.db.database.Database` when constructed with
    a :class:`WalConfig`; driven by :class:`~repro.db.write.WriteBatch`
    commits.  All cost lands on the shared database cost model.
    """

    def __init__(self, config: WalConfig, cost: CostModel) -> None:
        config.validate()
        self.config = config
        self.cost = cost
        self.streams: List[WalShard] = [
            WalShard(stream=i) for i in range(config.shards)
        ]
        #: All records, global lsn order (lsn == list position).
        self.records: List[WalRecord] = []
        self.next_lsn = 0
        #: First lsn not yet covered by a completed fsync group.
        self._grouped_upto = 0
        self.crashed = False
        #: Checkpoint state (see :meth:`install_snapshot`).
        self.snapshot_tables: Optional[Dict[str, TableSnapshot]] = None
        self.snapshot_lsn = -1
        # Lifetime ordinals for the FaultPlan kill points.
        self._appends = 0
        self._fsyncs = 0
        self._applies = 0

    # ------------------------------------------------------------------
    # Append / commit
    # ------------------------------------------------------------------
    def append(
        self, op: str, table: str, payload: Any, payload_bytes: int
    ) -> WalRecord:
        """Append one record (visible, not yet durable); charges one
        ``log_append``.  May raise :class:`CrashError` at a scripted
        append kill point — *after* the record landed in the buffer."""
        self._check_alive()
        record = WalRecord(
            lsn=self.next_lsn,
            op=op,
            table=table,
            payload=payload,
            nbytes=payload_bytes + RECORD_HEADER_BYTES,
        )
        self.next_lsn += 1
        self.records.append(record)
        self.streams[record.lsn % len(self.streams)].records.append(record)
        self.cost.log_appends(1)
        ordinal = self._appends
        self._appends += 1
        self._kill("append", ordinal)
        return record

    def group_commit(self) -> None:
        """Schedule fsync barriers over every *full* pending group.

        Consecutive-lsn groups of ``group_size`` records each charge
        one ``log_fsync`` per distinct stream touched and advance those
        streams' durable watermarks; a trailing partial group stays
        volatile (that is the group-commit deal — see :meth:`flush`).
        """
        self._check_alive()
        while self.next_lsn - self._grouped_upto >= self.config.group_size:
            self._fsync_range(
                self._grouped_upto,
                self._grouped_upto + self.config.group_size,
            )

    def flush(self) -> None:
        """Force the pending partial group durable (checkpoint barrier)."""
        self._check_alive()
        self.group_commit()
        if self._grouped_upto < self.next_lsn:
            self._fsync_range(self._grouped_upto, self.next_lsn)

    def _fsync_range(self, lo: int, hi: int) -> None:
        """One barrier pass over lsns ``[lo, hi)``: per distinct stream,
        charge one ``log_fsync`` and advance its watermark."""
        n = len(self.streams)
        per_stream: Dict[int, Tuple[int, int]] = {}
        for lsn in range(lo, hi):
            count, _ = per_stream.get(lsn % n, (0, -1))
            per_stream[lsn % n] = (count + 1, lsn)
        self._grouped_upto = hi
        for stream_id in sorted(per_stream):
            count, high_lsn = per_stream[stream_id]
            self.cost.log_fsyncs(1)
            self.streams[stream_id].durable_lsn = high_lsn
            if obs.is_enabled():
                obs.emit(GroupCommitEvent(
                    stream=stream_id,
                    records=count,
                    group_size=self.config.group_size,
                    durable_lsn=high_lsn,
                ))
            ordinal = self._fsyncs
            self._fsyncs += 1
            self._kill("fsync", ordinal)

    def notify_applied(self) -> None:
        """Count one applied operation (a kill point between applies)."""
        self._check_alive()
        ordinal = self._applies
        self._applies += 1
        self._kill("apply", ordinal)

    # ------------------------------------------------------------------
    # Durability queries
    # ------------------------------------------------------------------
    def is_durable(self, record: WalRecord) -> bool:
        """Whether ``record`` survives a crash right now."""
        stream = self.streams[record.lsn % len(self.streams)]
        return record.lsn <= stream.durable_lsn

    def durable_prefix(self) -> List[WalRecord]:
        """Records up to (excluding) the first non-durable lsn.

        The prefix rule: a durable record above a torn one is unusable
        — replaying it out of order would corrupt tuple-id assignment —
        so recovery stops at the first gap.
        """
        prefix: List[WalRecord] = []
        for record in self.records:
            if not self.is_durable(record):
                break
            prefix.append(record)
        return prefix

    @property
    def pending_records(self) -> int:
        """Appended records not yet covered by a completed barrier."""
        return self.next_lsn - self._grouped_upto

    # ------------------------------------------------------------------
    # Checkpoint / recovery support
    # ------------------------------------------------------------------
    def install_snapshot(
        self, tables: Dict[str, TableSnapshot], snapshot_lsn: int
    ) -> None:
        """Store a checkpoint image on stable media (the log keeps it)."""
        self.snapshot_tables = tables
        self.snapshot_lsn = snapshot_lsn

    def adopt(self, records: List[WalRecord]) -> None:
        """Seed a fresh log with an already-durable record prefix.

        Used by recovery: the replayed records were fsynced in a prior
        life, so they carry over durable and uncharged, and new appends
        continue the lsn sequence after them.
        """
        if self.records:
            raise WalError("can only adopt records into an empty log")
        self.records = list(records)
        self.next_lsn = len(records)
        self._grouped_upto = self.next_lsn
        for record in self.records:
            stream = self.streams[record.lsn % len(self.streams)]
            stream.records.append(record)
            stream.durable_lsn = record.lsn
        # Kill ordinals intentionally restart at zero: a recovered
        # database gets a fresh (fault-free) plan by default.

    # ------------------------------------------------------------------
    def _check_alive(self) -> None:
        if self.crashed:
            raise WalError(
                "write-ahead log has crashed; recover the database with "
                "repro.wal.recover_database"
            )

    def _kill(self, point: str, ordinal: int) -> None:
        faults = self.config.faults
        if faults is not None and faults.take_kill(point, ordinal):
            self.crashed = True
            raise CrashError(
                f"scripted kill after {point} #{ordinal}"
            )

    def summary(self) -> Dict[str, Any]:
        """Structured state for :func:`repro.tools.wal_summary`."""
        return {
            "group_size": self.config.group_size,
            "shards": self.config.shards,
            "records": len(self.records),
            "pending_records": self.pending_records,
            "durable_records": len(self.durable_prefix()),
            "snapshot_lsn": self.snapshot_lsn,
            "crashed": self.crashed,
            "streams": [
                {
                    "stream": s.stream,
                    "records": len(s.records),
                    "durable_lsn": s.durable_lsn,
                }
                for s in self.streams
            ],
        }
