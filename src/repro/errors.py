"""Typed exception hierarchy for the public API surface.

Every error the library raises deliberately derives from
:class:`ReproError`, so callers can catch one base class instead of
pattern-matching ``ValueError`` messages.  :class:`ReproError` itself
subclasses :class:`ValueError`: every site that historically raised a
bare ``ValueError`` keeps working for callers that still catch that —
the redesign tightens the taxonomy without breaking a single
``except ValueError``.

The concrete classes map to the layers that raise them:

* :class:`IndexExistsError` — creating a table or secondary index under
  a name that is already taken (``repro.db``).
* :class:`InvalidBudgetError` — a memory-budget figure that cannot be
  apportioned: non-positive global bounds, negative weights, malformed
  arbiter configuration (``repro.db``, ``repro.engine.arbiter``).
* :class:`ShardConfigError` — impossible shard topology: zero shards,
  unknown partitioner names, shard/partitioner arity mismatches, bad
  executor knobs (``repro.engine``).
* :class:`ShardConflictError` — a shard reported a *transient* conflict
  during concurrent dispatch (the cost-model analogue of an OLC version
  validation failure, cf. :class:`repro.concurrency.olc_tree.Restart`).
  The parallel executor retries these with backoff; user code only sees
  one if it drives a :class:`~repro.engine.executor.ShardExecutor`
  directly.
* :class:`CacheConfigError` — an adaptive-cache configuration that can
  never help: non-positive budgets, a cache budget at or above the index
  soft bound it is meant to compete under, malformed sketch/tier knobs
  (``repro.cache``, ``repro.db``).
* :class:`LeafKindError` — an unknown or unsupported leaf kind: a
  ``leaf_kinds`` selection naming a kind never registered with
  :func:`repro.btree.kinds.register_leaf_kind`, registering a duplicate
  kind without ``replace=True``, or attaching a :class:`CacheConfig` to
  a tree whose kinds include one without cache support
  (``repro.btree.kinds``, ``repro.core``).
* :class:`ExecutorSaturatedError` — the parallel executor's pool could
  not accept work.  Engine paths never propagate it (they degrade to
  the serial backend instead); direct executor users opt in with
  ``ParallelShardExecutor(strict_saturation=True)`` to shed load
  themselves.
* :class:`ReplicaConfigError` — an impossible replica-cluster topology:
  zero replicas, a profile list whose arity does not match the replica
  count, non-positive budget weights, an elastic profile with no bound
  to apportion, or a routing/heartbeat knob that can never fire
  (``repro.cluster``, ``repro.db``).
* :class:`WalError` — an invalid write-ahead-log configuration or a
  misuse of the transactional write surface: non-positive group sizes
  or stream counts, committing a :class:`~repro.db.write.WriteBatch`
  twice, or staging operations into one already committed
  (``repro.wal``, ``repro.db``).
* :class:`RecoveryError` — crash recovery cannot proceed: recovering a
  database that has no write-ahead log, or replaying a log whose
  records reference tables the DDL history never created
  (``repro.wal.recovery``).
* :class:`TuningConfigError` — a self-tuning configuration that can
  never act: non-positive sample windows or payback horizons, empty
  cache ladders, negative fees, enabling the advisor twice, or
  enabling it on a database with no budget arbiter to ride
  (``repro.tuning``, ``repro.db``).

Deliberately *outside* this hierarchy: :class:`repro.wal.CrashError`,
the simulated kill raised at a :meth:`FaultPlan.kill <repro.engine.
faults.FaultPlan.kill>` point.  A crash is not an input error — it must
never be swallowed by an ``except ValueError`` — so it subclasses
:class:`RuntimeError` instead.
"""

from __future__ import annotations


class ReproError(ValueError):
    """Base class of every deliberate error raised by this library."""


class IndexExistsError(ReproError):
    """An index (or table) name is already registered."""


class InvalidBudgetError(ReproError):
    """A memory budget cannot be apportioned as requested."""


class ShardConfigError(ReproError):
    """A sharded-engine topology or executor configuration is invalid."""


class ShardConflictError(ReproError):
    """A shard reported a transient conflict; the dispatch may retry."""


class ExecutorSaturatedError(ReproError):
    """The parallel dispatch pool cannot accept more work right now."""


class CacheConfigError(ReproError):
    """An adaptive-cache configuration is invalid or cannot help."""


class LeafKindError(ReproError):
    """A leaf kind is unknown, duplicated, or unsupported in context."""


class ReplicaConfigError(ReproError):
    """A replica-cluster topology or routing configuration is invalid."""


class WalError(ReproError):
    """A write-ahead-log configuration or write-batch use is invalid."""


class RecoveryError(ReproError):
    """Crash recovery cannot proceed from the given database state."""


class TuningConfigError(ReproError):
    """A self-tuning advisor configuration is invalid or cannot act."""


__all__ = [
    "CacheConfigError",
    "ExecutorSaturatedError",
    "IndexExistsError",
    "InvalidBudgetError",
    "LeafKindError",
    "RecoveryError",
    "ReplicaConfigError",
    "ReproError",
    "ShardConfigError",
    "ShardConflictError",
    "TuningConfigError",
    "WalError",
]
