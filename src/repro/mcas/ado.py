"""The indexed-table ADO: the paper's custom MCAS plugin (section 6.3).

"An ADO plugin provides custom functionality to the MCAS store; in our
case, this is the implementation of an indexed multi-column table and a
domain-specific API for loading and querying its data."
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.memory.allocator import TrackingAllocator
from repro.memory.cost_model import CostModel
from repro.table.table import Table
from repro.workloads.iotta import LogRow


class IndexedTableADO:
    """An in-memory indexed multi-column table.

    The table holds :class:`~repro.workloads.iotta.LogRow` rows (four
    8-byte columns) and the index maps the 16-byte (timestamp, object
    id) key to tuple ids, exactly as in section 6.3.

    Args:
        index_factory: Builds the ordered index given (table, allocator,
            cost model).  This is where the experiment plugs in STX,
            elastic variants, SeqTree128, or HOT.
        cost_model: Shared cost account for the whole partition.
    """

    def __init__(
        self,
        index_factory: Callable[[Table, TrackingAllocator, CostModel], object],
        cost_model: CostModel,
    ) -> None:
        self.cost = cost_model
        self.allocator = TrackingAllocator(cost_model=cost_model)
        self.table = Table(
            key_of_row=lambda row: row.index_key(),
            row_bytes=LogRow.ROW_BYTES,
            cost_model=cost_model,
            allocator=self.allocator,
        )
        self.index = index_factory(self.table, self.allocator, cost_model)

    # ------------------------------------------------------------------
    # Domain-specific API (invoked through the MCAS store)
    # ------------------------------------------------------------------
    def ingest(self, row: LogRow) -> int:
        """Load one log row and index it; returns the tuple id."""
        tid = self.table.insert_row(row)
        self.index.insert(row.index_key(), tid)
        return tid

    def lookup(self, key: bytes) -> Optional[LogRow]:
        """Point query by (timestamp, object id) key."""
        tid = self.index.lookup(key)
        if tid is None:
            return None
        return self.table.row(tid)

    def scan(self, start_key: bytes, count: int) -> List[Tuple[bytes, int]]:
        """Included-column range query: ``count`` keys from ``start_key``."""
        return self.index.scan(start_key, count)

    def scan_rows(self, start_key: bytes, count: int) -> List[LogRow]:
        """Range query materializing full rows.

        Unlike :meth:`scan` (an included-column query answered from the
        index alone on standard leaves), this loads every row — the
        query shape for which indirect key storage costs nothing extra,
        since the rows are fetched anyway.
        """
        out: List[LogRow] = []
        for _, tid in self.index.scan(start_key, count):
            out.append(self.table.row(tid))
        return out

    def count_ops_by_type(self, start_key: bytes, count: int) -> dict:
        """Domain query of the monitoring workload: a histogram of REST
        operation types over a window of the log."""
        histogram: dict = {}
        for row in self.scan_rows(start_key, count):
            histogram[row.op_type] = histogram.get(row.op_type, 0) + 1
        return histogram

    def evict(self, key: bytes) -> bool:
        """Remove an aged row from the table and index."""
        tid = self.index.remove(key)
        if tid is None:
            return False
        self.table.delete_row(tid)
        return True

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def index_bytes(self) -> int:
        return self.index.index_bytes

    @property
    def dataset_bytes(self) -> int:
        return self.table.dataset_bytes
