"""Durability substrate for the MCAS store (write-ahead log + snapshots).

MCAS is "built from the ground up to support advanced storage
technologies, such as persistent memory" [29].  This module provides the
simulated equivalent: a persistent-memory device with explicit flush
boundaries, a write-ahead log of ADO mutations with group commit, and
checkpoint/recover.  Indexes are volatile and rebuilt on recovery from
the recovered table — the standard design for indexes over persistent
data (and what makes index elasticity safe: compact and standard leaves
are equally reconstructible).

Crash semantics: everything appended since the last ``flush()`` is lost
(`PMDevice.crash()`), which the failure-injection tests exploit.
"""

from __future__ import annotations

import struct
from typing import Callable, List, Optional, Tuple

from repro.memory.cost_model import CostModel, NULL_COST_MODEL
from repro.workloads.iotta import LogRow

_RECORD = struct.Struct(">BQQQQ")  # op tag + four u64 columns
_OP_INGEST = 1
_OP_EVICT = 2


class PMDevice:
    """A persistent-memory log device with explicit flush boundaries.

    Appends land in a volatile tail until ``flush()`` makes them
    durable; ``crash()`` discards the tail.  A separate snapshot area
    holds at most one checkpoint image (written atomically by
    ``install_snapshot``).
    """

    def __init__(self, cost_model: CostModel = NULL_COST_MODEL) -> None:
        self.cost = cost_model
        self._durable: List[bytes] = []
        self._tail: List[bytes] = []
        self._snapshot: Optional[bytes] = None
        self._snapshot_log_position = 0
        self.flush_count = 0

    # -- log ---------------------------------------------------------------
    def append(self, record: bytes) -> None:
        self._tail.append(record)
        self.cost.copy_bytes(len(record))

    def flush(self) -> None:
        """Persist the tail (one device write barrier)."""
        if self._tail:
            self._durable.extend(self._tail)
            self._tail.clear()
        self.flush_count += 1
        self.cost.fixed_ops(4.0)  # CLWB + fence latency

    def crash(self) -> None:
        """Power failure: the unflushed tail evaporates."""
        self._tail.clear()

    def durable_records(self) -> List[bytes]:
        """Records that survive a crash, after the snapshot position."""
        return self._durable[self._snapshot_log_position :]

    # -- snapshot -------------------------------------------------------------
    def install_snapshot(self, image: bytes) -> None:
        """Atomically replace the checkpoint and truncate the log: records
        up to this point are folded into the image."""
        self._snapshot = image
        self._snapshot_log_position = len(self._durable)
        self.cost.copy_bytes(len(image))
        self.flush_count += 1

    @property
    def snapshot(self) -> Optional[bytes]:
        return self._snapshot

    @property
    def log_bytes(self) -> int:
        return sum(len(r) for r in self._durable) + sum(
            len(r) for r in self._tail
        )


def encode_ingest(row: LogRow) -> bytes:
    return _RECORD.pack(
        _OP_INGEST, row.timestamp, row.op_type, row.object_id, row.size
    )


def encode_evict(key: bytes) -> bytes:
    timestamp = int.from_bytes(key[:8], "big")
    object_id = int.from_bytes(key[8:16], "big")
    return _RECORD.pack(_OP_EVICT, timestamp, 0, object_id, 0)


def decode_record(record: bytes) -> Tuple[int, LogRow]:
    tag, timestamp, op_type, object_id, size = _RECORD.unpack(record)
    return tag, LogRow(timestamp, op_type, object_id, size)


class DurableADO:
    """Wraps an indexed-table ADO with write-ahead logging.

    Mutations are logged before being applied; the log is flushed every
    ``group_commit`` operations (group commit trades a bounded window of
    data loss for throughput, exactly as persistent-memory stores do).
    ``checkpoint()`` serializes the live rows and truncates the log.
    """

    def __init__(
        self,
        ado,
        device: PMDevice,
        group_commit: int = 32,
    ) -> None:
        if group_commit < 1:
            raise ValueError("group_commit must be >= 1")
        self.ado = ado
        self.device = device
        self.group_commit = group_commit
        self._pending = 0

    def _log(self, record: bytes) -> None:
        self.device.append(record)
        self._pending += 1
        if self._pending >= self.group_commit:
            self.sync()

    def sync(self) -> None:
        """Force the log to durability."""
        self.device.flush()
        self._pending = 0

    # -- mutations ----------------------------------------------------------
    def ingest(self, row: LogRow) -> int:
        self._log(encode_ingest(row))
        return self.ado.ingest(row)

    def evict(self, key: bytes) -> bool:
        self._log(encode_evict(key))
        return self.ado.evict(key)

    # -- reads pass through ----------------------------------------------------
    def lookup(self, key: bytes):
        return self.ado.lookup(key)

    def scan(self, start_key: bytes, count: int):
        return self.ado.scan(start_key, count)

    # -- checkpoint / recovery ---------------------------------------------------
    def checkpoint(self) -> None:
        """Serialize all live rows into the snapshot area; truncates the
        recovery log."""
        self.sync()
        rows = [row for _, tid in self.ado.index.scan(b"\x00" * 16, 1 << 60)
                for row in [self.ado.table.row(tid)]]
        image = b"".join(encode_ingest(row) for row in rows)
        self.device.install_snapshot(image)

    @staticmethod
    def recover(
        device: PMDevice,
        ado_factory: Callable[[], object],
        group_commit: int = 32,
    ) -> "DurableADO":
        """Rebuild an ADO from the snapshot plus the durable log suffix.

        The index is volatile: it is rebuilt by re-ingesting recovered
        rows (evict records cancel earlier ingests).
        """
        ado = ado_factory()
        image = device.snapshot or b""
        for offset in range(0, len(image), _RECORD.size):
            _, row = decode_record(image[offset : offset + _RECORD.size])
            ado.ingest(row)
        for record in device.durable_records():
            tag, row = decode_record(record)
            if tag == _OP_INGEST:
                ado.ingest(row)
            else:
                ado.evict(row.index_key())
        return DurableADO(ado, device, group_commit)

    # -- reporting -------------------------------------------------------------
    @property
    def index_bytes(self) -> int:
        return self.ado.index_bytes

    @property
    def dataset_bytes(self) -> int:
        return self.ado.dataset_bytes
