"""MCAS-style in-memory storage substrate (paper section 6.3).

MCAS [29] is a network-attached in-memory store with a partitioned
architecture (one single-threaded execution engine per partition) whose
custom functionality is provided by Active Data Object (ADO) plugins
[30].  The paper implements an indexed multi-column table as an ADO and
measures end-to-end throughput, where index work is only part of each
operation — which is why large index-level slowdowns shrink to 0.5-2.6%
end to end.

This model reproduces exactly that structure: a partitioned store that
charges a fixed network + engine dispatch cost per client operation and
delegates to an ADO holding a row table plus a pluggable ordered index.
"""

from repro.mcas.store import MCASStore
from repro.mcas.ado import IndexedTableADO
from repro.mcas.persistence import DurableADO, PMDevice

__all__ = ["MCASStore", "IndexedTableADO", "DurableADO", "PMDevice"]
