"""The MCAS store: partitioned engines, network-attached clients."""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.memory.cost_model import CostModel
from repro.workloads.iotta import LogRow

#: Fixed per-operation overhead outside the index, in cost units: client
#: RPC (two message passes through the NIC/transport) plus the partition
#: engine's dispatch into the ADO.  Calibrated so index-level slowdowns
#: shrink to the paper's 0.5-2.6% end-to-end lookup degradation while
#: 1000-key scans remain index-dominated (section 6.3).
NETWORK_COST_UNITS = 120.0
ENGINE_COST_UNITS = 30.0


class MCASStore:
    """A partitioned in-memory store with ADO plugins.

    Each partition runs a single-threaded execution engine owning one
    ADO instance (the paper's architecture).  Client calls are routed by
    key hash; every call charges the fixed network + engine cost before
    the ADO does index/table work.

    The section 6.3 experiments use one partition ("single-threaded
    results"), which is the default.
    """

    def __init__(
        self,
        ado_factory: Callable[[CostModel], object],
        cost_model: CostModel,
        partitions: int = 1,
    ) -> None:
        if partitions < 1:
            raise ValueError("need at least one partition")
        self.cost = cost_model
        self.partitions = [ado_factory(cost_model) for _ in range(partitions)]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(self, key: bytes):
        if len(self.partitions) == 1:
            return self.partitions[0]
        return self.partitions[hash(key) % len(self.partitions)]

    def _charge_op(self) -> None:
        self.cost.fixed_ops(NETWORK_COST_UNITS + ENGINE_COST_UNITS)

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def ingest(self, row: LogRow) -> int:
        """One insert operation, "one for each row in the log"."""
        self._charge_op()
        return self._route(row.index_key()).ingest(row)

    def lookup(self, key: bytes) -> Optional[LogRow]:
        self._charge_op()
        return self._route(key).lookup(key)

    def scan(self, start_key: bytes, count: int) -> List[Tuple[bytes, int]]:
        """Range query within the partition owning ``start_key``.

        With multiple partitions, ranges are partition-local (MCAS
        shards by key; the section 6.3 experiments are single-partition).
        """
        self._charge_op()
        return self._route(start_key).scan(start_key, count)

    def evict(self, key: bytes) -> bool:
        self._charge_op()
        return self._route(key).evict(key)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def index_bytes(self) -> int:
        return sum(p.index_bytes for p in self.partitions)

    @property
    def dataset_bytes(self) -> int:
        return sum(p.dataset_bytes for p in self.partitions)
