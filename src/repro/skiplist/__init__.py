"""Block skip list substrate and its elastic instantiation.

The paper (section 3) notes the elastic framework applies to "any index
with internal key storage, such as a B+-tree, skip list, or Bw-Tree".
:class:`FatSkipList` is a skip list over *blocks* — each tower routes to
a leaf-ADT node holding up to ``leaf_capacity`` keys — which gives a
skip list the same leaf boundary the framework needs.
:class:`ElasticFatSkipList` attaches the unchanged elasticity controller
to it: blocks convert to blind tries under pressure and back.
"""

from repro.skiplist.fat import FatSkipList, SkipPath
from repro.skiplist.elastic import ElasticFatSkipList

__all__ = ["FatSkipList", "SkipPath", "ElasticFatSkipList"]
