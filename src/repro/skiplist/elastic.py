"""ElasticFatSkipList: the skip-list instantiation of the framework."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.config import ElasticConfig
from repro.core.framework import make_elastic
from repro.core.policies import GrowShrinkPolicy
from repro.memory.allocator import TrackingAllocator
from repro.memory.budget import PressureState
from repro.memory.cost_model import CostModel, NULL_COST_MODEL
from repro.skiplist.fat import FatSkipList
from repro.table.table import Table


class ElasticFatSkipList(FatSkipList):
    """A block skip list whose blocks elastically change representation.

    Wiring is identical to the elastic B+-tree: the unchanged
    :class:`~repro.core.elasticity.ElasticityController` drives block
    conversion through the host surface — demonstrating the framework's
    claim that it applies to any index with internal key storage
    (paper section 3).
    """

    def __init__(
        self,
        table: Table,
        config: ElasticConfig,
        key_width: int = 8,
        leaf_capacity: int = 16,
        allocator: Optional[TrackingAllocator] = None,
        cost_model: CostModel = NULL_COST_MODEL,
        policy: Optional[GrowShrinkPolicy] = None,
        seed: int = 0xFA7,
    ) -> None:
        super().__init__(
            key_width=key_width,
            leaf_capacity=leaf_capacity,
            allocator=allocator,
            cost_model=cost_model,
            seed=seed,
        )
        self.table = table
        self.config = config
        self.controller = make_elastic(self, config, table, policy)

    @property
    def pressure_state(self) -> PressureState:
        return self.controller.state

    def lookup(self, key: bytes) -> Optional[int]:
        path = self.find(key)
        result = path.tower.block.lookup(key)
        self.controller.on_search_leaf(path, path.tower.block)
        self.controller.run_pending()
        return result

    def scan(self, start_key: bytes, count: int) -> List[Tuple[bytes, int]]:
        path = self.find(start_key)
        if self.controller.on_search_leaf(path, path.tower.block):
            path = self.find(start_key)
        result = self._collect_scan(path.tower.block, start_key, count)
        self.controller.run_pending()
        return result

    def insert(self, key: bytes, tid: int) -> Optional[int]:
        result = super().insert(key, tid)
        self.controller.run_pending()
        return result

    def remove(self, key: bytes) -> Optional[int]:
        result = super().remove(key)
        self.controller.run_pending()
        return result
