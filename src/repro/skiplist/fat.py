"""FatSkipList: a skip list whose towers route to multi-key blocks.

Classic skip lists keep one key per node; a *block* skip list keeps a
sorted run of keys per tower, which (a) amortizes the tower pointers'
space, and (b) creates exactly the leaf abstraction the elastic index
framework operates on: blocks implement the same leaf ADT as B+-tree
leaves, overflow by splitting (spawning a new tower), and underflow by
merging with their successor.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.btree.leaves import LeafFullError, LeafNode, StandardLeaf
from repro.memory.allocator import TrackingAllocator
from repro.memory.cost_model import CostModel, NULL_COST_MODEL

_MAX_LEVEL = 20
_TOWER_HEADER_BYTES = 16
_POINTER_BYTES = 8


class _Tower:
    """A skip-list tower: a routing key and a pointer to its block."""

    __slots__ = ("key", "block", "forward")

    def __init__(self, key: Optional[bytes], block: LeafNode, height: int) -> None:
        self.key = key  # None on the head tower (acts as -infinity)
        self.block = block
        self.forward: List[Optional["_Tower"]] = [None] * height

    def __repr__(self) -> str:
        label = "head" if self.key is None else self.key.hex()
        return f"<Tower {label} h={len(self.forward)}>"


@dataclass
class SkipPath:
    """Opaque path handed to handlers: per-level predecessors + tower.

    ``update`` may be ``None`` for paths produced by plain enumeration
    (bulk compaction), which only needs the tower.
    """

    tower: _Tower
    update: Optional[List[_Tower]] = None


class FatSkipList:
    """Skip list over leaf-ADT blocks; implements the ElasticHost surface."""

    def __init__(
        self,
        key_width: int,
        leaf_capacity: int = 16,
        allocator: Optional[TrackingAllocator] = None,
        cost_model: CostModel = NULL_COST_MODEL,
        seed: int = 0xFA7,
    ) -> None:
        self.key_width = key_width
        self.leaf_capacity = leaf_capacity
        self.allocator = allocator if allocator is not None else TrackingAllocator()
        self.cost = cost_model
        self._rng = random.Random(seed)
        first_block = StandardLeaf(
            key_width, leaf_capacity, self.allocator, cost_model
        )
        self._head = _Tower(None, first_block, _MAX_LEVEL)
        self.first_leaf: LeafNode = first_block
        self._level = 1
        self._count = 0
        self.overflow_handler = FatSkipList.split_overflow_handler
        self.underflow_handler = FatSkipList.rebalance_underflow_handler
        self.append_split_fraction = 0.7
        self._charge_tower(self._head, +1)

    # ------------------------------------------------------------------
    # Tower accounting
    # ------------------------------------------------------------------
    def _tower_bytes(self, tower: _Tower) -> int:
        return (
            _TOWER_HEADER_BYTES
            + self.key_width
            + len(tower.forward) * _POINTER_BYTES
        )

    def _charge_tower(self, tower: _Tower, sign: int) -> None:
        if sign > 0:
            self.allocator.allocate(self._tower_bytes(tower), "skiplist.tower")
        else:
            self.allocator.free(self._tower_bytes(tower), "skiplist.tower")

    def _random_height(self) -> int:
        height = 1
        while height < _MAX_LEVEL and self._rng.random() < 0.5:
            height += 1
        return height

    # ------------------------------------------------------------------
    # Descent
    # ------------------------------------------------------------------
    def find(self, key: bytes) -> SkipPath:
        """Per-level predecessors of ``key``; path.tower owns its block."""
        update: List[_Tower] = [self._head] * _MAX_LEVEL
        node = self._head
        for level in range(self._level - 1, -1, -1):
            while True:
                nxt = node.forward[level]
                self.cost.rand_lines(1)
                self.cost.compares(1)
                self.cost.branches(1)
                if nxt is not None and nxt.key <= key:
                    node = nxt
                else:
                    break
            update[level] = node
        return SkipPath(tower=node, update=update)

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------
    def lookup(self, key: bytes) -> Optional[int]:
        path = self.find(key)
        return path.tower.block.lookup(key)

    def insert(self, key: bytes, tid: int) -> Optional[int]:
        if len(key) != self.key_width:
            raise ValueError(f"key width {len(key)} != {self.key_width}")
        path = self.find(key)
        block = path.tower.block
        try:
            old = block.upsert(key, tid)
        except LeafFullError:
            self.overflow_handler(self, path, block, key, tid)
            self._count += 1
            return None
        if old is None:
            self._count += 1
        return old

    def remove(self, key: bytes) -> Optional[int]:
        path = self.find(key)
        block = path.tower.block
        tid = block.remove(key)
        if tid is None:
            return None
        self._count -= 1
        if block.count < block.underflow_threshold:
            self.underflow_handler(self, path, block)
        return tid

    # ------------------------------------------------------------------
    # Range operations
    # ------------------------------------------------------------------
    def scan(self, start_key: bytes, count: int) -> List[Tuple[bytes, int]]:
        path = self.find(start_key)
        return self._collect_scan(path.tower.block, start_key, count)

    def _collect_scan(
        self, block: Optional[LeafNode], start_key: bytes, count: int
    ) -> List[Tuple[bytes, int]]:
        out: List[Tuple[bytes, int]] = []
        iterator = block.iter_from(start_key)
        while block is not None and len(out) < count:
            for item in iterator:
                out.append(item)
                if len(out) >= count:
                    break
            else:
                block = block.next_leaf
                if block is not None:
                    self.cost.rand_lines(1)
                    iterator = block.items()
                continue
            break
        return out

    def items(self) -> Iterable[Tuple[bytes, int]]:
        block: Optional[LeafNode] = self.first_leaf
        while block is not None:
            for item in block.items():
                yield item
            block = block.next_leaf

    def __len__(self) -> int:
        return self._count

    @property
    def index_bytes(self) -> int:
        return sum(
            size
            for category, size in self.allocator.live_bytes.items()
            if category != "table"
        )

    # ------------------------------------------------------------------
    # Textbook overflow: split the block, spawn a tower
    # ------------------------------------------------------------------
    @staticmethod
    def split_overflow_handler(
        sl: "FatSkipList", path: SkipPath, block: LeafNode, key: bytes, tid: int
    ) -> None:
        sl.split_leaf_and_insert(path, block, key, tid)

    def split_leaf_and_insert(
        self, path: SkipPath, block: LeafNode, key: bytes, tid: int
    ) -> None:
        fraction = 0.5
        if (
            block.next_leaf is None
            and isinstance(block, StandardLeaf)
            and block.keys
            and key > block.keys[-1]
        ):
            fraction = self.append_split_fraction
        right, separator = block.split(fraction)
        right.link_after(block)
        self.insert_separator(path, separator, right)
        target = right if key >= separator else block
        target.upsert(key, tid)

    def insert_separator(
        self, path: SkipPath, separator: bytes, right: LeafNode
    ) -> None:
        """Splice a new tower for ``right`` after ``path.tower``."""
        assert path.update is not None, "separator insert needs a search path"
        height = self._random_height()
        tower = _Tower(separator, right, height)
        if height > self._level:
            self._level = height
        for level in range(height):
            pred = path.update[level]
            # The update array was computed for a key >= separator; all
            # towers between pred and its successor have keys beyond it.
            tower.forward[level] = pred.forward[level]
            pred.forward[level] = tower
        self._charge_tower(tower, +1)
        self.cost.allocs(1)

    # ------------------------------------------------------------------
    # Textbook underflow: borrow from / merge with the successor block
    # ------------------------------------------------------------------
    @staticmethod
    def rebalance_underflow_handler(
        sl: "FatSkipList", path: SkipPath, block: LeafNode
    ) -> None:
        sl.rebalance_leaf(path, block)

    def rebalance_leaf(self, path: SkipPath, block: LeafNode) -> None:
        tower = path.tower
        nxt = tower.forward[0]
        if block.count == 0:
            # An empty block is removable no matter how large its
            # neighbours are (mixed-capacity merges may be impossible,
            # but an empty block contributes nothing).
            self._drop_empty_block(path)
            return
        if nxt is None:
            return  # rightmost block: tolerated, like the B+-tree's
        nxt_block = nxt.block
        if nxt_block.count > nxt_block.min_fill:
            key, tid = nxt_block.take_first()
            block.upsert(key, tid)
            nxt.key = nxt_block.first_key()
            return
        if block.count + nxt_block.count <= block.capacity:
            block.merge_from(nxt_block)
            nxt_block.unlink()
            nxt_block.destroy()
            self._remove_tower(nxt, path.update)
            return
        # Neither borrow nor merge possible (mixed capacities): tolerate.

    def _drop_empty_block(self, path: SkipPath) -> None:
        tower = path.tower
        block = tower.block
        if tower is self._head:
            nxt = tower.forward[0]
            if nxt is None:
                return  # the sole (empty) block stays as the head's
            # Promote the successor's block into the head slot.
            tower.block = nxt.block
            block.unlink()
            block.destroy()
            self.first_leaf = tower.block
            self._remove_tower(nxt, path.update)
            return
        block.unlink()
        block.destroy()
        self._remove_tower(tower, path.update)

    def _remove_tower(
        self, tower: _Tower, update: Optional[List[_Tower]]
    ) -> None:
        for level in range(len(tower.forward)):
            pred = (
                update[level]
                if update is not None
                and level < len(update)
                and update[level] is not tower
                else self._head
            )
            while pred.forward[level] is not tower:
                pred = pred.forward[level]
                assert pred is not None, "tower not linked at its level"
                self.cost.rand_lines(1)
            pred.forward[level] = tower.forward[level]
        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1
        self._charge_tower(tower, -1)
        self.cost.frees(1)

    # ------------------------------------------------------------------
    # Elastic-host surface
    # ------------------------------------------------------------------
    def make_standard_leaf(self, items: List[Tuple[bytes, int]]) -> LeafNode:
        return StandardLeaf(
            self.key_width, self.leaf_capacity, self.allocator, self.cost,
            items=items,
        )

    def replace_leaf(self, path: SkipPath, old: LeafNode, new: LeafNode) -> None:
        new.replace_in_chain(old)
        path.tower.block = new
        if self.first_leaf is old:
            self.first_leaf = new
        old.destroy()

    def iter_leaves_with_paths(self) -> Iterable[Tuple[SkipPath, LeafNode]]:
        tower: Optional[_Tower] = self._head
        while tower is not None:
            yield SkipPath(tower=tower), tower.block
            tower = tower.forward[0]

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def check_invariants(self, strict_fill: bool = True) -> None:
        with self.cost.paused():
            # Towers sorted; each block's keys within [tower.key, next.key).
            blocks: List[LeafNode] = []
            tower: Optional[_Tower] = self._head
            total = 0
            while tower is not None:
                nxt = tower.forward[0]
                block = tower.block
                blocks.append(block)
                keys = [k for k, _ in block.items()]
                assert keys == sorted(keys)
                total += len(keys)
                for key in keys:
                    if tower.key is not None:
                        assert key >= tower.key, "key below tower separator"
                    if nxt is not None:
                        assert key < nxt.key, "key beyond next tower"
                if nxt is not None:
                    assert tower.key is None or tower.key < nxt.key
                tower = nxt
            assert total == self._count, f"count {self._count} != {total}"
            # The block chain agrees with the tower chain.
            chain = []
            block = self.first_leaf
            while block is not None:
                chain.append(block)
                block = block.next_leaf
            assert chain == blocks, "block chain disagrees with towers"
            # Every level is a subsequence of level 0, sorted.
            for level in range(1, self._level):
                node = self._head.forward[level]
                prev_key = None
                while node is not None:
                    assert len(node.forward) > level
                    if prev_key is not None:
                        assert node.key > prev_key
                    prev_key = node.key
                    node = node.forward[level]
