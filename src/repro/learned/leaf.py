"""LearnedLeaf: a FITing-Tree segment leaf behind the B+-tree leaf ADT.

The leaf stores *only* tuple ids (key order) plus a small table of
piecewise-linear segments fitted over the key distribution
(:mod:`repro.learned.segments`).  A point probe evaluates one model —
charged as a ``model_eval`` event plus the in-cache segment-locate
compares — and then verifies with a biased exponential search out from
the predicted position, loading at most a 2ε-wide window of keys from
the table.  The loads go through :meth:`Table.load_key`, so inside a
batched read path (``lookup_batch`` wraps them in
:meth:`CostModel.mlp_batch`) they charge at the overlapped batched
rate, or join an open :meth:`CostModel.mlp_window` prefetch wave.

Correctness never depends on the model: the exponential search widens
until the probe brackets the key, so a stale model costs extra loads,
not wrong answers.  Staleness is bounded anyway — the leaf fits with a
tightened bound ``fit ε = max(1, ε // 4)`` and counts every structural
mutation as one position of *drift*; when drift would exceed
``ε - fit ε - 1`` the leaf **retrains** (reloads its keys, refits the
segments), billed like a conversion and emitted as a
:class:`~repro.obs.events.LeafRetrainEvent`.  That keeps every probe of
a stored key within ε of its prediction (the hypothesis-tested
invariant) and makes churn measurably expensive — exactly the signal
the elasticity policy uses to send churn-heavy leaves back to full
representation (DESIGN.md §11).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro import obs
from repro.blindi.breathing import BreathingTidArray, TID_BYTES
from repro.btree.leaves import LeafFullError, LeafNode, next_node_id
from repro.learned.segments import (
    SEGMENT_BYTES,
    Segment,
    fit_segments,
    locate_segment,
)
from repro.memory.allocator import TrackingAllocator
from repro.memory.cost_model import CostModel, NULL_COST_MODEL
from repro.obs import LeafRetrainEvent
from repro.table.table import Table

#: Learned node header: capacity/occupancy/epsilon bookkeeping, drift
#: counter, segment-table pointer, chain pointers.
LEARNED_HEADER_BYTES = 32


class LearnedLeaf(LeafNode):
    """B+-tree leaf with piecewise-linear models and indirect keys."""

    kind = "learned"
    indirect_keys = True

    def __init__(
        self,
        capacity: int,
        table: Table,
        allocator: TrackingAllocator,
        cost_model: CostModel = NULL_COST_MODEL,
        key_width: int = 8,
        epsilon: int = 8,
        breathing_slack: Optional[int] = None,
        items: Optional[List[Tuple[bytes, int]]] = None,
        adopt: Optional[Tuple[List[int], List[Segment]]] = None,
    ) -> None:
        if capacity < 4:
            raise ValueError(f"learned capacity {capacity} too small")
        if epsilon < 2:
            raise ValueError(f"epsilon must be >= 2, got {epsilon}")
        self._capacity = capacity
        self.table = table
        self.allocator = allocator
        self.cost = cost_model
        self.key_width = key_width
        self.epsilon = epsilon
        #: The models are fitted tighter than the public bound so that
        #: bounded post-fit drift still keeps probes within ``epsilon``.
        self.fit_epsilon = max(1, epsilon // 4)
        self.drift_slack = max(0, epsilon - self.fit_epsilon - 1)
        self.tids: List[int] = []
        self.segments: List[Segment] = []
        #: Structural mutations since the last fit (each shifts true
        #: positions by at most one).
        self.drift = 0
        self.retrain_count = 0
        #: Total structural mutations absorbed — the churn signal the
        #: grow/shrink policy reads (DESIGN.md §11).
        self.churn_ops = 0
        #: ``(predicted_pos, final_pos, probe_loads)`` of the last probe.
        self.last_probe: Tuple[int, int, int] = (0, 0, 0)
        self.next_leaf: Optional[LeafNode] = None
        self.prev_leaf: Optional[LeafNode] = None
        self.node_id = next_node_id()
        #: Set by the elasticity controller: raises the underflow trigger
        #: to the paper's k+1 invariant (section 4).
        self.elastic_underflow = False
        self._alive = True
        self._seg_charged = 0
        self.breathing: Optional[BreathingTidArray] = None
        self.breathing_slack = breathing_slack
        self.allocator.allocate(self._body_bytes, "leaf.learned")
        if adopt is not None:
            tids, segments = adopt
            if len(tids) > capacity:
                raise ValueError("adopted contents exceed capacity")
            self.tids = list(tids)
            self.segments = list(segments)
            cost_model.copy_bytes(
                len(tids) * TID_BYTES + len(segments) * SEGMENT_BYTES
            )
        elif items:
            if len(items) > capacity:
                raise ValueError("initial items exceed capacity")
            self.tids = [t for _, t in items]
            cost_model.copy_bytes(len(items) * TID_BYTES)
            self._fit([k for k, _ in items])
        if breathing_slack is not None:
            self.breathing = BreathingTidArray(
                breathing_slack, capacity, len(self.tids), allocator,
                cost_model, category="leaf.learned.tids",
            )
        self._resize_segment_slab()

    # ------------------------------------------------------------------
    # Space model
    # ------------------------------------------------------------------
    @property
    def _body_bytes(self) -> int:
        """Node body: header plus either the in-node tuple-id array or a
        pointer to the breathing array (section 5.4); the segment-table
        pointer is part of the header."""
        if self.breathing_slack is not None:
            return LEARNED_HEADER_BYTES + 8
        return LEARNED_HEADER_BYTES + self._capacity * TID_BYTES

    @property
    def _segment_bytes(self) -> int:
        return len(self.segments) * SEGMENT_BYTES

    @property
    def size_bytes(self) -> int:
        total = self._body_bytes + self._seg_charged
        if self.breathing is not None:
            total += self.breathing.size_bytes
        return total

    def _resize_segment_slab(self) -> None:
        """Reconcile the separately-allocated segment table with the
        current fit (allocator round trips are charged)."""
        wanted = self._segment_bytes
        if wanted == self._seg_charged:
            return
        if self._seg_charged:
            self.allocator.free(self._seg_charged, "leaf.learned")
        if wanted:
            self.allocator.allocate(wanted, "leaf.learned")
        self._seg_charged = wanted

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self.tids)

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def underflow_threshold(self) -> int:
        """Same k+1 elastic invariant as compact leaves (section 4), so
        learned leaves step down the capacity ladder on removals."""
        if self.elastic_underflow:
            return self._capacity // 2 + 1
        return self.min_fill

    # ------------------------------------------------------------------
    # Model fitting / retraining
    # ------------------------------------------------------------------
    def _fit(self, keys: List[bytes]) -> None:
        """Refit the segments over ``keys`` (the current contents, in
        order).  Charges the one-pass cone fit and the segment-table
        write; key loads are the caller's responsibility."""
        key_ints = [int.from_bytes(k, "big") for k in keys]
        self.cost.compares(len(key_ints))
        self.segments = fit_segments(key_ints, self.fit_epsilon)
        self.cost.copy_bytes(self._segment_bytes)
        self.drift = 0

    def _retrain(self, trigger: str) -> None:
        """Reload the keys and refit — billed like a conversion."""
        with self.cost.measure() as delta:
            with self.cost.attributed_to("learned.retrain"):
                self.cost.rand_lines(1)
                with self.cost.mlp_batch():
                    keys = [self.table.load_key(tid) for tid in self.tids]
                self._fit(keys)
                self._resize_segment_slab()
        self.retrain_count += 1
        if obs.is_enabled():
            obs.emit(LeafRetrainEvent(
                node_id=self.node_id,
                trigger=trigger,
                count=self.count,
                segments=len(self.segments),
                retrain_count=self.retrain_count,
                cost_units=delta.weighted_cost(),
            ))

    def _note_churn(self) -> None:
        """Account one structural mutation; retrain when the accumulated
        drift would let a probe escape the ε window."""
        self.churn_ops += 1
        self.drift += 1
        if self.drift > self.drift_slack or (self.tids and not self.segments):
            self._retrain("drift")

    # ------------------------------------------------------------------
    # Point probe
    # ------------------------------------------------------------------
    def _probe(self, key: bytes) -> Tuple[bool, int]:
        """Locate ``key``: ``(found, pos)`` where ``pos`` is the match
        position or the insertion point.  Charges one ``model_eval``,
        the in-cache segment locate, and one indirect key load per
        probed position (biased exponential search from the predicted
        position, so a well-fitted model pays for ~1 load)."""
        n = len(self.tids)
        cost = self.cost
        if n == 0:
            self.last_probe = (0, 0, 0)
            return False, 0
        if not self.segments:
            pred = 0
        else:
            cost.model_evals(1)
            steps = max(1, len(self.segments).bit_length())
            cost.compares(steps)
            cost.branches(steps)
            key_int = int.from_bytes(key, "big")
            seg = self.segments[locate_segment(self.segments, key_int)]
            pred = seg.predict(key_int)
            if pred >= n:
                pred = n - 1
        loaded: Dict[int, bytes] = {}

        def key_at(pos: int) -> bytes:
            cached = loaded.get(pos)
            if cached is None:
                loaded[pos] = cached = self.table.load_key(self.tids[pos])
            return cached

        probe = key_at(pred)
        cost.compares(1)
        cost.branches(1)
        if probe == key:
            self.last_probe = (pred, pred, len(loaded))
            return True, pred
        if probe < key:
            bound = 1
            while pred + bound < n and key_at(pred + bound) < key:
                cost.compares(1)
                cost.branches(1)
                bound <<= 1
            lo = pred + (bound >> 1) + 1
            hi = min(n - 1, pred + bound)
        else:
            bound = 1
            while pred - bound >= 0 and key_at(pred - bound) > key:
                cost.compares(1)
                cost.branches(1)
                bound <<= 1
            lo = max(0, pred - bound)
            hi = pred - (bound >> 1) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            k = key_at(mid)
            cost.compares(1)
            cost.branches(1)
            if k == key:
                self.last_probe = (pred, mid, len(loaded))
                return True, mid
            if k < key:
                lo = mid + 1
            else:
                hi = mid - 1
        self.last_probe = (pred, lo, len(loaded))
        return False, lo

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------
    def _breathing_search_cost(self) -> None:
        if self.breathing is not None:
            # One extra dependent dereference before the data pointer.
            self.cost.seq_lines(2)

    def lookup(self, key: bytes) -> Optional[int]:
        with self.cost.attributed_to("learned.search"):
            self.cost.rand_lines(1)  # node access
            self._breathing_search_cost()
            found, pos = self._probe(key)
        if found:
            return self.tids[pos]
        return None

    def lookup_batch(self, keys: List[bytes]) -> List[Optional[int]]:
        # One node access for the whole run (tuple ids and segments stay
        # cache-resident); every probe load is issued as part of a batch
        # of independent accesses, so it charges at the overlapped
        # key_load_batched rate — or joins an open prefetch wave.
        out: List[Optional[int]] = []
        with self.cost.attributed_to("learned.search"):
            self.cost.wave_loads("rand_line", 1)
            self._breathing_search_cost()
            with self.cost.mlp_batch():
                for key in keys:
                    found, pos = self._probe(key)
                    out.append(self.tids[pos] if found else None)
        return out

    def upsert(self, key: bytes, tid: int) -> Optional[int]:
        with self.cost.attributed_to("learned.search"):
            self.cost.rand_lines(1)
            self._breathing_search_cost()
            found, pos = self._probe(key)
        if found:
            old = self.tids[pos]
            self.tids[pos] = tid
            self.cost.seq_lines(1)
            return old
        if len(self.tids) >= self._capacity:
            raise LeafFullError()
        with self.cost.attributed_to("learned.update"):
            if self.breathing is not None:
                self.breathing.ensure_room(len(self.tids) + 1)
            self.tids.insert(pos, tid)
            self.cost.copy_bytes((len(self.tids) - pos) * TID_BYTES)
            self._note_churn()
        return None

    def remove(self, key: bytes) -> Optional[int]:
        with self.cost.attributed_to("learned.search"):
            self.cost.rand_lines(1)
            self._breathing_search_cost()
            found, pos = self._probe(key)
        if not found:
            return None
        with self.cost.attributed_to("learned.update"):
            tid = self.tids.pop(pos)
            self.cost.copy_bytes((len(self.tids) - pos) * TID_BYTES)
            self._note_churn()
        return tid

    # ------------------------------------------------------------------
    # Ordered access (each key is an indirect load)
    # ------------------------------------------------------------------
    def first_key(self) -> bytes:
        return self.table.load_key(self.tids[0])

    def last_key(self) -> bytes:
        """Largest stored key (append-path detection in the tree)."""
        return self.table.load_key(self.tids[-1])

    def items(self) -> Iterator[Tuple[bytes, int]]:
        self.cost.rand_lines(1)
        for tid in list(self.tids):
            yield self.table.load_key_batched(tid), tid

    def iter_from(self, key: bytes) -> Iterator[Tuple[bytes, int]]:
        self.cost.rand_lines(1)
        _, start = self._probe(key)
        for pos in range(start, len(self.tids)):
            tid = self.tids[pos]
            yield self.table.load_key_batched(tid), tid

    def take_first(self) -> Tuple[bytes, int]:
        key = self.table.load_key(self.tids[0])
        tid = self.tids.pop(0)
        self.cost.copy_bytes(len(self.tids) * TID_BYTES)
        self._note_churn()
        return key, tid

    def take_last(self) -> Tuple[bytes, int]:
        key = self.table.load_key(self.tids[-1])
        tid = self.tids.pop()
        self._note_churn()
        return key, tid

    # ------------------------------------------------------------------
    # Structural operations
    # ------------------------------------------------------------------
    def keys_and_tids(self) -> Tuple[List[bytes], List[int]]:
        tids = list(self.tids)
        keys = [self.table.load_key_batched(tid) for tid in tids]
        return keys, tids

    def split(self, fraction: float = 0.5) -> Tuple["LearnedLeaf", bytes]:
        keys, tids = self.keys_and_tids()
        mid = max(1, min(len(tids) - 1, int(len(tids) * fraction)))
        right = LearnedLeaf(
            self._capacity,
            self.table,
            self.allocator,
            self.cost,
            self.key_width,
            epsilon=self.epsilon,
            breathing_slack=self.breathing_slack,
            items=list(zip(keys[mid:], tids[mid:])),
        )
        right.elastic_underflow = self.elastic_underflow
        self.tids = tids[:mid]
        self._fit(keys[:mid])
        self._resize_segment_slab()
        if self.breathing is not None:
            self.breathing.reset_capacity(self._capacity, len(self.tids))
        return right, keys[mid]

    def merge_from(self, right: LeafNode) -> None:
        if self.count + right.count > self._capacity:
            raise ValueError("merge would overflow learned leaf")
        keys, tids = self.keys_and_tids()
        rkeys, rtids = right.keys_and_tids()
        self.tids = tids + rtids
        self.cost.copy_bytes(len(rtids) * TID_BYTES)
        self._fit(keys + rkeys)
        self._resize_segment_slab()
        if self.breathing is not None:
            self.breathing.ensure_room(len(self.tids))

    # ------------------------------------------------------------------
    # Conversion helpers (used by the elasticity algorithm)
    # ------------------------------------------------------------------
    def with_capacity(self, new_capacity: int) -> "LearnedLeaf":
        """New learned leaf adopting this one's tuple ids and segments at
        a different capacity (the section 4 capacity ladder) — no key
        reloads and no refit.  The caller replaces this leaf in the tree
        and then destroys it."""
        leaf = LearnedLeaf(
            new_capacity,
            self.table,
            self.allocator,
            self.cost,
            self.key_width,
            epsilon=self.epsilon,
            breathing_slack=self.breathing_slack,
            adopt=(self.tids, self.segments),
        )
        leaf.elastic_underflow = self.elastic_underflow
        leaf.drift = self.drift
        leaf.retrain_count = self.retrain_count
        leaf.churn_ops = self.churn_ops
        return leaf

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def destroy(self) -> None:
        if self._alive:
            self.allocator.free(self._body_bytes, "leaf.learned")
            if self._seg_charged:
                self.allocator.free(self._seg_charged, "leaf.learned")
                self._seg_charged = 0
            if self.breathing is not None:
                self.breathing.destroy()
            self._alive = False

    def __repr__(self) -> str:
        return (
            f"<LearnedLeaf n={self.count}/{self._capacity} "
            f"segs={len(self.segments)} eps={self.epsilon}>"
        )


def learned_leaf_factory(
    capacity: int,
    table: Table,
    key_width: int,
    epsilon: int = 8,
    breathing_slack: Optional[int] = None,
) -> Callable[[object], LearnedLeaf]:
    """Factory for trees whose *every* leaf is learned (static
    FITing-Tree baseline)."""

    def make(tree) -> LearnedLeaf:
        return LearnedLeaf(
            capacity,
            table,
            tree.allocator,
            tree.cost,
            key_width,
            epsilon=epsilon,
            breathing_slack=breathing_slack,
        )

    return make
