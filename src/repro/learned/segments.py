"""Piecewise-linear segment fitting with a hard error bound.

This is FITing-Tree's *shrinking cone* algorithm (arXiv 1801.10207,
§3.1): walk the sorted keys once, maintaining the cone of slopes that
keep every key seen so far within ``epsilon`` positions of its linear
prediction from the segment origin.  When the next key would empty the
cone, close the segment and start a new one at that key.  The result
is the minimal set of origin-anchored segments for the bound, in one
pass and O(1) state.

Guarantee: for every key the segment was fitted over,

    ``abs(segment.predict(key_int) - true_position) <= epsilon``

(after integer rounding — positions are integers, so the half-unit
rounding slack folds into the integral bound).  Predictions are
clamped to the segment's fitted position range, which keeps
extrapolation for *unfitted* probe keys inside the segment's span.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

#: Modeled storage of one segment: 8 B truncated fence key, 8 B IEEE-754
#: slope, 4 B base position, 4 B span — two half cache lines, matching
#: FITing-Tree's in-node segment table entries.
SEGMENT_BYTES = 24


@dataclass(frozen=True)
class Segment:
    """One linear model ``pos ~ base_pos + slope * (key - base_key)``."""

    __slots__ = ("base_key", "base_pos", "last_pos", "slope")

    base_key: int
    base_pos: int
    #: Position of the last key the cone was fitted over (inclusive);
    #: predictions clamp into ``[base_pos, last_pos]``.
    last_pos: int
    slope: float

    def predict(self, key_int: int) -> int:
        """Predicted position of ``key_int``, clamped to the fitted span."""
        raw = self.base_pos + self.slope * (key_int - self.base_key)
        pos = int(raw + 0.5) if raw >= 0 else self.base_pos
        if pos < self.base_pos:
            return self.base_pos
        if pos > self.last_pos:
            return self.last_pos
        return pos


def fit_segments(key_ints: Sequence[int], epsilon: int) -> List[Segment]:
    """Fit shrinking-cone segments over strictly increasing ``key_ints``.

    ``epsilon`` is the maximum absolute prediction error, in positions,
    for every fitted key.  Returns at least one segment for non-empty
    input; empty input yields no segments.
    """
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    n = len(key_ints)
    segments: List[Segment] = []
    i = 0
    while i < n:
        base_key = key_ints[i]
        slope_lo = float("-inf")
        slope_hi = float("inf")
        j = i + 1
        while j < n:
            dx = key_ints[j] - base_key
            if dx <= 0:
                raise ValueError("keys must be strictly increasing")
            dy = j - i
            cand_hi = (dy + epsilon) / dx
            cand_lo = (dy - epsilon) / dx
            new_hi = min(slope_hi, cand_hi)
            new_lo = max(slope_lo, cand_lo)
            if new_lo > new_hi:
                break
            slope_hi, slope_lo = new_hi, new_lo
            j += 1
        if j == i + 1:
            slope = 0.0
        else:
            # Any slope in the cone satisfies the bound; the midpoint
            # halves the worst-case error in practice.
            slope = (slope_lo + slope_hi) / 2.0
        segments.append(Segment(base_key, i, j - 1, slope))
        i = j
    return segments


def locate_segment(segments: Sequence[Segment], key_int: int) -> int:
    """Index of the segment covering ``key_int``: the last segment whose
    ``base_key`` is <= the probe, clamped to the first segment for
    probes below the fitted range.  Pure position logic — callers
    charge the binary search's compares/branches themselves."""
    lo, hi = 0, len(segments) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if segments[mid].base_key <= key_int:
            lo = mid
        else:
            hi = mid - 1
    return lo
