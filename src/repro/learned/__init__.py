"""FITing-Tree style learned leaves (arXiv 1801.10207).

A :class:`~repro.learned.leaf.LearnedLeaf` replaces the in-leaf key
array with a handful of piecewise-linear segments fitted over the key
distribution with a hard error bound ``epsilon``: a lookup evaluates
one linear model (a ``model_eval`` cost event) and then verifies at
most a 2ε-wide window of indirect key loads against the table.  Keys
themselves stay out of the leaf entirely — only tuple ids and the
segment models are stored — so a learned leaf sits *between* the full
(:class:`~repro.btree.leaves.StandardLeaf`) and compact
(:class:`~repro.blindi.leaf.CompactLeaf`) representations on the
paper's space/speed dial: less memory than full leaves, fewer cost
units per probe than a blind trie on distributions the models fit
well.  The elasticity controller treats it as a third conversion
target (see :mod:`repro.btree.kinds` and DESIGN.md §11).
"""

from repro.learned.segments import (
    SEGMENT_BYTES,
    Segment,
    fit_segments,
)
from repro.learned.leaf import (
    LEARNED_HEADER_BYTES,
    LearnedLeaf,
    learned_leaf_factory,
)

__all__ = [
    "LEARNED_HEADER_BYTES",
    "LearnedLeaf",
    "SEGMENT_BYTES",
    "Segment",
    "fit_segments",
    "learned_leaf_factory",
]
