"""Elastic Indexes — a reproduction of Hershcovitch et al., EDBT 2022.

"Elastic Indexes: Dynamic Space vs. Query Efficiency Tuning for In-Memory
Database Indexing."

Public API highlights:

* :class:`~repro.core.ElasticBPlusTree` — the paper's elastic B+-tree.
* :class:`~repro.core.ElasticConfig` — soft size bound, thresholds,
  compact representation, breathing.
* :class:`~repro.btree.BPlusTree` — the STX-style baseline.
* :mod:`repro.blindi` — SeqTrie / SeqTree / SubTrie blind tries.
* :mod:`repro.baselines` — HOT, ART, skip list, Bw-tree, Masstree,
  hybrid index comparators.
* :mod:`repro.workloads` — YCSB, uniform/zipfian, IOTTA-like cloud-log
  trace generators.
* :mod:`repro.mcas` — the MCAS-style in-memory store substrate used by
  the full-system experiments (section 6.3).
* :mod:`repro.bench` — drivers that regenerate every figure and table of
  the paper's evaluation.
"""

from repro.core import ElasticBPlusTree, ElasticConfig
from repro.btree import BPlusTree
from repro.table import Table
from repro.memory import CostModel, TrackingAllocator, MemoryBudget, PressureState

__version__ = "1.0.0"

__all__ = [
    "ElasticBPlusTree",
    "ElasticConfig",
    "BPlusTree",
    "Table",
    "CostModel",
    "TrackingAllocator",
    "MemoryBudget",
    "PressureState",
    "__version__",
]
