"""repro.cluster — divergent replica sets above the engine tier.

The cluster tier materializes N replicas of one table's index, each
with a *different* configuration drawn from the same registry (the
elastic 3-kind lattice, a compact-heavy tree, a cache-heavy tree, the
non-elastic baseline), routes each query class to the replica that
serves it cheapest, fans writes out to all replicas, and survives
scripted replica outages — all deterministic and priced through the
shared :class:`~repro.memory.cost_model.CostModel`.

Layering (top to bottom)::

    Database.create_index(..., replicas=ReplicaConfig(...))
      └── ReplicaSet            (this package: route reads, fan writes)
            └── ClusterRouter   (heat histogram, what-if scores, failover)
            └── Replica × N     (one profile each)
                  └── ShardedIndex / plain index   (existing engine tier)

``replicas=1`` (or no ``replicas`` argument) bypasses this package
entirely: the database builds the plain or sharded index exactly as
before, byte-identical to every pre-cluster baseline.
"""

from repro.cluster.advisor import ReplicaAdvisor
from repro.cluster.config import (
    QUERY_CLASSES,
    ReplicaConfig,
    ReplicaProfile,
    preset_profile,
)
from repro.cluster.replica_set import (
    Replica,
    ReplicaSet,
    apportion_bounds,
    build_replica_set,
)
from repro.cluster.router import ClusterRouter

__all__ = [
    "ClusterRouter",
    "QUERY_CLASSES",
    "Replica",
    "ReplicaAdvisor",
    "ReplicaConfig",
    "ReplicaProfile",
    "ReplicaSet",
    "apportion_bounds",
    "build_replica_set",
    "preset_profile",
]
