"""The replica-set layer: N divergent full copies behind one surface.

A :class:`ReplicaSet` slots between the database facade and the
engine's shard router, refactoring the read path from *router → shard →
index* into *router → replica-set → shard → index*:

* every replica holds a **full copy** of the table's index, built from
  its own :class:`~repro.cluster.ReplicaProfile` (possibly sharded
  underneath via the existing engine router);
* **reads** route whole operations to the one replica the
  :class:`~repro.cluster.ClusterRouter` scores cheapest for the
  operation's query class;
* **writes** fan out to *all* replicas — including down ones, since an
  outage models read-serving failure only — through the engine's
  :class:`~repro.engine.executor.ShardExecutor` machinery (one
  :class:`~repro.engine.executor.ShardTask` per replica), so replicas
  never diverge in content, only in configuration;
* the cluster-global soft bound is apportioned across the elastic
  replicas by profile weight (largest remainder) at build time and
  announced with a ``cluster_budget`` event; the database's
  :class:`~repro.engine.BudgetArbiter` then sees every replica's
  controllers under that one global bound.

Like :class:`~repro.engine.router.ShardedIndex`, a ReplicaSet presents
the ``OrderedIndex`` surface without subclassing it, so
:class:`~repro.exec.BatchExecutor` treats its batch methods as native.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.cluster.config import (
    BOUNDED_KINDS,
    ReplicaConfig,
    ReplicaProfile,
)
from repro.cluster.router import ClusterRouter
from repro.engine.executor import (
    SerialShardExecutor,
    ShardExecutor,
    ShardTask,
)
from repro.engine.router import ShardedIndex, build_sharded_index
from repro.errors import CacheConfigError, ReplicaConfigError
from repro.memory.cost_model import CostModel
from repro.obs import ClusterBudgetEvent

#: Shared default write-fanout backend (stateless, like the engine's).
_SERIAL = SerialShardExecutor()


class Replica:
    """One full copy of the index plus its configuration identity."""

    def __init__(
        self,
        replica_id: int,
        profile: ReplicaProfile,
        index,
        name: str = "",
        bound_bytes: Optional[int] = None,
    ) -> None:
        self.replica_id = replica_id
        self.profile = profile
        self.index = index
        self.name = name or f"replica[{replica_id}]"
        self.bound_bytes = bound_bytes
        #: Read-serving health; writes ignore it (see module docstring).
        self.up = True

    @property
    def index_bytes(self) -> int:
        return self.index.index_bytes

    def controllers(self) -> List:
        """Elasticity controllers under this replica (0, 1, or per shard)."""
        if isinstance(self.index, ShardedIndex):
            return self.index.controllers()
        controller = getattr(self.index, "controller", None)
        return [controller] if controller is not None else []

    def caches(self) -> List:
        """Adaptive caches under this replica, if any."""
        if isinstance(self.index, ShardedIndex):
            return self.index.caches()
        cache = getattr(self.index, "cache", None)
        return [cache] if cache is not None else []

    def __len__(self) -> int:
        return len(self.index)

    def __repr__(self) -> str:
        return (
            f"Replica({self.name}, profile={self.profile.name!r}, "
            f"items={len(self)}, bytes={self.index_bytes}, "
            f"up={self.up})"
        )


class ReplicaSet:
    """An OrderedIndex surface over N divergently-configured replicas."""

    def __init__(
        self,
        replicas: Sequence[Replica],
        config: ReplicaConfig,
        cost: CostModel,
        executor: Optional[ShardExecutor] = None,
        build_params: Optional[Dict] = None,
    ) -> None:
        if not replicas:
            raise ReplicaConfigError("a replica set needs >= 1 replica")
        self.replicas: List[Replica] = list(replicas)
        self.config = config
        self.cost = cost
        self.executor: ShardExecutor = (
            executor if executor is not None else _SERIAL
        )
        self.router = ClusterRouter(config, self.replicas, cost)
        #: How replicas were built (kind-independent knobs the advisor
        #: reuses when rebuilding one replica under a new profile).
        self.build_params: Dict = build_params or {}

    # ------------------------------------------------------------------
    # Writes: fan out to every replica (up or down)
    # ------------------------------------------------------------------
    def _fan_out(self, op: str, ops: int, runs) -> List:
        tasks = [
            ShardTask(
                shard_id=replica.replica_id, ops=ops, read_only=False,
                run=run,
            )
            for replica, run in zip(self.replicas, runs)
        ]
        return self.executor.run_tasks(op, tasks, self.cost)

    def insert(self, key: bytes, tid: int) -> Optional[int]:
        self.router.tick(1)
        results = self._fan_out(
            "insert", 1,
            [
                (lambda r=replica: r.index.insert(key, tid))
                for replica in self.replicas
            ],
        )
        return results[0]

    def remove(self, key: bytes) -> Optional[int]:
        self.router.tick(1)
        results = self._fan_out(
            "remove", 1,
            [
                (lambda r=replica: r.index.remove(key))
                for replica in self.replicas
            ],
        )
        return results[0]

    def insert_sorted_batch(
        self, pairs: Sequence[Tuple[bytes, int]]
    ) -> List[Optional[int]]:
        self.router.tick(len(pairs))
        results = self._fan_out(
            "insert", len(pairs),
            [
                (lambda r=replica: r.index.insert_sorted_batch(pairs))
                for replica in self.replicas
            ],
        )
        return results[0]

    # ------------------------------------------------------------------
    # Reads: classify, route to one replica
    # ------------------------------------------------------------------
    def lookup(self, key: bytes) -> Optional[int]:
        self.router.note_access(key)
        cls = self.router.classify_point(key)
        self.router.observe(cls, [key])
        self.router.tick(1, cls)
        return self.router.replica_for(cls).index.lookup(key)

    def lookup_batch(self, keys: Sequence[bytes]) -> List[Optional[int]]:
        if not keys:
            return []
        self.router.observe("batch", keys)
        self.router.tick(len(keys), "batch")
        return self.router.replica_for("batch").index.lookup_batch(keys)

    def scan(self, start_key: bytes, count: int) -> List[Tuple[bytes, int]]:
        if count <= 0:
            return []
        self.router.observe("scan", [start_key])
        self.router.tick(1, "scan")
        return self.router.replica_for("scan").index.scan(start_key, count)

    def scan_batch(
        self, start_keys: Sequence[bytes], count: int
    ) -> List[List[Tuple[bytes, int]]]:
        if not start_keys or count <= 0:
            return [[] for _ in start_keys]
        self.router.observe("scan", start_keys)
        self.router.tick(len(start_keys), "scan")
        return self.router.replica_for("scan").index.scan_batch(
            start_keys, count
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.replicas[0].index)

    @property
    def index_bytes(self) -> int:
        """Total bytes across all replicas — the cluster's true footprint."""
        return sum(replica.index_bytes for replica in self.replicas)

    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    def controllers(self) -> List:
        """All elasticity controllers across replicas, replica order."""
        return [
            controller
            for replica in self.replicas
            for controller in replica.controllers()
        ]

    def caches(self) -> List:
        return [
            cache
            for replica in self.replicas
            for cache in replica.caches()
        ]

    def replica_report(self) -> List[Dict[str, object]]:
        """Per-replica configuration/health/routing snapshot."""
        assignment = self.router.assignment()
        scores = self.router.scores()
        report = []
        for replica in self.replicas:
            classes = sorted(
                cls for cls, rid in assignment.items()
                if rid == replica.replica_id
            )
            report.append({
                "name": replica.name,
                "profile": replica.profile.name,
                "kind": replica.profile.kind,
                "up": replica.up,
                "items": len(replica),
                "index_bytes": replica.index_bytes,
                "bound_bytes": replica.bound_bytes or 0,
                "weight": replica.profile.weight,
                "classes": classes,
                "scores": {
                    cls: units
                    for (cls, rid), units in sorted(scores.items())
                    if rid == replica.replica_id
                },
            })
        return report


def apportion_bounds(
    profiles: Sequence[ReplicaProfile],
    total_bound_bytes: Optional[int],
) -> List[Optional[int]]:
    """Split the cluster-global bound across the bounded profiles.

    Largest-remainder over the bounded profiles' weights; unbounded
    kinds get ``None``.  Raises when a bounded profile exists but no
    total bound was given (the budget would silently vanish).
    """
    bounded = [p.kind in BOUNDED_KINDS for p in profiles]
    if not any(bounded):
        return [None] * len(profiles)
    if total_bound_bytes is None:
        names = [p.name for p, b in zip(profiles, bounded) if b]
        raise ReplicaConfigError(
            f"elastic profiles {names} need a cluster bound: pass "
            "ReplicaConfig(total_bound_bytes=...) or size_bound_bytes"
        )
    from repro.engine.arbiter import largest_remainder

    weights = [p.weight for p, b in zip(profiles, bounded) if b]
    shares = largest_remainder(total_bound_bytes, weights)
    bounds: List[Optional[int]] = []
    cursor = 0
    for is_bounded in bounded:
        if is_bounded:
            bounds.append(shares[cursor])
            cursor += 1
        else:
            bounds.append(None)
    return bounds


def build_replica_set(
    config: ReplicaConfig,
    *,
    kind: str,
    table,
    cost: CostModel,
    key_width: int,
    size_bound_bytes: Optional[int] = None,
    name: str = "",
    shards: int = 1,
    partitioner: str = "hash",
    executor: Optional[ShardExecutor] = None,
    cache=None,
    **index_kwargs,
) -> ReplicaSet:
    """Materialize ``config.replicas`` full copies behind one router.

    Each replica is built from its resolved profile — its own kind,
    leaf-kind selection, trigger fractions, and optional cache — and,
    with ``shards > 1``, is itself a
    :class:`~repro.engine.router.ShardedIndex` over the given
    partitioner (the replica tier stacks *above* the shard tier).  The
    cluster bound (``config.total_bound_bytes``, falling back to
    ``size_bound_bytes``) is apportioned across the elastic replicas by
    profile weight.
    """
    config.validate()
    if config.profiles and cache is not None:
        raise ReplicaConfigError(
            "pass caches per profile (ReplicaProfile(cache=...)) when "
            "explicit profiles are given"
        )
    profiles = config.resolved_profiles(kind, cache, **index_kwargs)
    total = (
        config.total_bound_bytes
        if config.total_bound_bytes is not None
        else size_bound_bytes
    )
    bounds = apportion_bounds(profiles, total)
    replicas: List[Replica] = []
    for replica_id, (profile, bound) in enumerate(zip(profiles, bounds)):
        label = (
            f"{name}/r{replica_id}" if name else f"replica[{replica_id}]"
        )
        merged = dict(index_kwargs)
        merged.update(profile.builder_kwargs())
        if shards > 1:
            index = build_sharded_index(
                profile.kind,
                table=table,
                cost=cost,
                key_width=key_width,
                n_shards=shards,
                partitioner=partitioner,
                size_bound_bytes=bound,
                name=label,
                executor=executor,
                cache=profile.cache,
                **merged,
            )
        else:
            from repro.memory.allocator import TrackingAllocator
            from repro.registry import build_index

            index = build_index(
                profile.kind,
                table=table,
                allocator=TrackingAllocator(cost_model=cost),
                cost=cost,
                key_width=key_width,
                size_bound_bytes=bound,
                **merged,
            )
            if profile.cache is not None:
                if not hasattr(index, "attach_cache"):
                    raise CacheConfigError(
                        f"index kind {profile.kind!r} does not support "
                        "adaptive caching"
                    )
                from repro.cache import IndexCache

                index.attach_cache(
                    IndexCache(profile.cache, name=f"{label}.cache")
                )
        replicas.append(
            Replica(replica_id, profile, index, name=label,
                    bound_bytes=bound)
        )
    if obs.is_enabled():
        obs.emit(ClusterBudgetEvent(
            total_bytes=total or 0,
            replicas=[p.name for p in profiles],
            bounds=[b or 0 for b in bounds],
            reason="build",
        ))
    return ReplicaSet(
        replicas, config, cost, executor=None,
        build_params={
            "table": table,
            "key_width": key_width,
            "shards": shards,
            "partitioner": partitioner,
            "executor": executor,
            "name": name,
        },
    )
