"""Periodic re-scoring and one-at-a-time replica rebuilds.

The :class:`ReplicaAdvisor` closes the loop the ROADMAP calls
"unlocking the power of diversity": the router's score table says how
well each *existing* replica serves the observed class mix; the advisor
asks whether a *different* profile would serve it better, and — when
the answer is a clear yes — rebuilds exactly one replica under the new
profile, billed like a bulk leaf conversion (drain + rebuild charged to
the shared cost model, ``replica_rebuild`` event carrying the units).

Candidate profiles are priced on a **scratch sample**: a throwaway
index built from the router's probe keys, measured and then rebated, so
candidate evaluation leaves only the advisor fee on the ledger — the
same pattern the router uses for what-if routing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.cluster.config import (
    BOUNDED_KINDS,
    QUERY_CLASSES,
    ReplicaProfile,
)
from repro.cluster.replica_set import Replica, ReplicaSet
from repro.engine.router import build_sharded_index
from repro.errors import ReplicaConfigError
from repro.obs import ReplicaRebuildEvent


class ReplicaAdvisor:
    """Re-scores replica configurations against the observed class mix."""

    def __init__(self, replica_set: ReplicaSet) -> None:
        self.replica_set = replica_set
        self.router = replica_set.router
        self.cost = replica_set.cost

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def score_round(self) -> Dict[tuple, float]:
        """Force one router scoring round now (probes rebated, fee billed)."""
        return self.router.score_round()

    def mix_weighted_scores(self) -> Dict[int, float]:
        """Each replica's cost contribution under the observed class mix.

        For every query class a replica currently serves, its per-op
        score is weighted by the class's observed share of operations;
        the sum is what the cluster pays per op for keeping the replica
        in its present configuration.  Replicas serving no class score
        0.0 — they are the natural rebuild candidates.
        """
        mix = self.router.class_mix()
        assignment = self.router.assignment()
        scores = self.router.scores()
        contribution: Dict[int, float] = {
            replica.replica_id: 0.0 for replica in self.replica_set.replicas
        }
        for cls, rid in assignment.items():
            units = scores.get((cls, rid))
            if units is not None:
                contribution[rid] += mix.get(cls, 0.0) * units
        return contribution

    # ------------------------------------------------------------------
    # Rebuild (billed)
    # ------------------------------------------------------------------
    def rebuild(self, replica_id: int, profile: ReplicaProfile) -> float:
        """Rebuild one replica under ``profile``; returns billed units.

        The replica's current index is drained in key order and bulk-
        loaded into a fresh index built from ``profile`` under the same
        apportioned bound — the whole round trip is charged to the
        shared cost model exactly like a bulk leaf conversion (nothing
        is rebated).  The router's cached scores for the replica are
        invalidated so the next round re-probes the new configuration.
        """
        profile.validate()
        replicas = self.replica_set.replicas
        if not 0 <= replica_id < len(replicas):
            raise ReplicaConfigError(
                f"no replica {replica_id} in a "
                f"{len(replicas)}-replica cluster"
            )
        replica = replicas[replica_id]
        bound = replica.bound_bytes
        if profile.kind in BOUNDED_KINDS and bound is None:
            raise ReplicaConfigError(
                f"profile {profile.name!r} is elastic but replica "
                f"{replica_id} holds no bound share to reuse"
            )
        params = self.replica_set.build_params
        old_profile = replica.profile
        items = len(replica.index)
        with self.cost.measure() as delta:
            drained = replica.index.scan(b"", items) if items else []
            new_index = self._build(profile, bound, replica.name, params)
            if drained:
                new_index.insert_sorted_batch(drained)
        cost_units = delta.weighted_cost()
        replica.index = new_index
        replica.profile = profile
        self.router.invalidate(replica_id)
        if obs.is_enabled():
            obs.emit(ReplicaRebuildEvent(
                replica=replica_id, old_profile=old_profile.name,
                new_profile=profile.name, items=items,
                cost_units=cost_units,
            ))
        return cost_units

    def _build(self, profile: ReplicaProfile, bound: Optional[int],
               label: str, params: Dict):
        """Build a fresh index for ``profile`` with the set's knobs."""
        merged = profile.builder_kwargs()
        if params.get("shards", 1) > 1:
            return build_sharded_index(
                profile.kind,
                table=params["table"],
                cost=self.cost,
                key_width=params["key_width"],
                n_shards=params["shards"],
                partitioner=params.get("partitioner", "hash"),
                size_bound_bytes=bound,
                name=label,
                executor=params.get("executor"),
                cache=profile.cache,
                **merged,
            )
        from repro.memory.allocator import TrackingAllocator
        from repro.registry import build_index

        index = build_index(
            profile.kind,
            table=params["table"],
            allocator=TrackingAllocator(cost_model=self.cost),
            cost=self.cost,
            key_width=params["key_width"],
            size_bound_bytes=bound,
            **merged,
        )
        if profile.cache is not None:
            from repro.cache import IndexCache

            index.attach_cache(
                IndexCache(profile.cache, name=f"{label}.cache")
            )
        return index

    # ------------------------------------------------------------------
    # Advice (candidates priced on a scratch sample, rebated)
    # ------------------------------------------------------------------
    def advise(
        self,
        candidates: Sequence[ReplicaProfile],
        improvement_fraction: float = 0.1,
    ) -> Optional[Tuple[int, str]]:
        """Consider rebuilding the worst replica under a candidate profile.

        The replica with the highest mix-weighted cost contribution is
        the rebuild target.  Each candidate is priced by building a
        scratch index over the router's sample keys, probing it with the
        same per-class probes, and rebating the whole evaluation (only
        the advisor fee is billed).  If the best candidate beats the
        incumbent's mix-weighted score by more than
        ``improvement_fraction``, the replica is rebuilt (billed) and
        ``(replica_id, profile_name)`` is returned; otherwise None.
        """
        contributions = self.mix_weighted_scores()
        if not contributions:
            return None
        target_id = max(
            contributions, key=lambda rid: (contributions[rid], -rid)
        )
        incumbent_units = contributions[target_id]
        mix = self.router.class_mix()
        sample_pairs = self._sample_pairs()
        if not sample_pairs or incumbent_units <= 0.0:
            return None
        best: Optional[Tuple[float, int, ReplicaProfile]] = None
        bound = self.replica_set.replicas[target_id].bound_bytes
        params = self.replica_set.build_params
        scored = 0
        for position, candidate in enumerate(candidates):
            candidate.validate()
            if candidate.kind in BOUNDED_KINDS and bound is None:
                continue
            with self.cost.measure() as delta:
                scratch = self._build(
                    candidate, bound, "advisor.scratch", params
                )
                scratch.insert_sorted_batch(sample_pairs)
                units = self._mix_probe_units(scratch, mix)
            self.cost.rebate_delta(delta)
            scored += 1
            key = (units, position)
            if best is None or key < (best[0], best[1]):
                best = (units, position, candidate)
        if scored:
            self.cost.fixed_ops(
                self.replica_set.config.advisor_fee_units * scored
            )
        if best is None:
            return None
        units, _, candidate = best
        if units >= incumbent_units * (1.0 - improvement_fraction):
            return None
        self.rebuild(target_id, candidate)
        return target_id, candidate.name

    def _sample_pairs(self) -> List[Tuple[bytes, int]]:
        """Distinct sampled keys (all classes) paired with dummy tids."""
        seen = sorted({
            key
            for cls in QUERY_CLASSES
            for key in self.router._samples[cls]
        })
        return [(key, i) for i, key in enumerate(seen)]

    def _mix_probe_units(self, index, mix: Dict[str, float]) -> float:
        """Mix-weighted per-op probe cost of ``index`` (not rebated here;
        the caller measures and rebates around this call)."""
        total = 0.0
        for cls in QUERY_CLASSES:
            share = mix.get(cls, 0.0)
            keys = self.router._samples[cls]
            if not share or not keys:
                continue
            with self.cost.measure() as delta:
                probes = self.router._probe(cls, index, keys)
            total += share * (delta.weighted_cost() / probes)
        return total
