"""Query-class routing across divergent replicas.

The :class:`ClusterRouter` is the read-side brain of a
:class:`~repro.cluster.ReplicaSet`.  It maintains:

* a deterministic **heat histogram** over the key space (``key[:2]``
  mapped onto ``heat_buckets`` range buckets) that splits point reads
  into ``point_hot`` vs. ``point_cold``;
* per-class **sample buffers** (the most recent ``probe_keys`` observed
  keys) used as what-if probes;
* a **score table**: every ``score_interval_ops`` operations each query
  class is probed against every *up* replica under
  :meth:`~repro.memory.cost_model.CostModel.measure`, the probe's delta
  is rebated (the ledger stays net-clean), and a fixed
  ``advisor_fee_units`` charge per scored (class, replica) pair prices
  the advisory work itself.  Each class then routes to its
  cheapest-scoring replica (ties break toward the lowest replica id).

Heartbeats consume the :class:`~repro.engine.FaultPlan` outage script:
a replica whose beat fails stops serving reads — its classes reroute to
the next-cheapest survivor (``replica_failover`` events) — while writes
keep fanning out to it, so recovery is re-admission from the cached
score table with no catch-up work and no double-charging.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.cluster.config import QUERY_CLASSES, ReplicaConfig
from repro.memory.cost_model import CostModel
from repro.obs import ReplicaFailoverEvent, ReplicaRouteEvent


class ClusterRouter:
    """Classifies operations and routes each class to a replica."""

    def __init__(
        self,
        config: ReplicaConfig,
        replicas: Sequence,
        cost: CostModel,
    ) -> None:
        self.config = config
        self.replicas = list(replicas)
        self.cost = cost
        self._heat: List[int] = [0] * config.heat_buckets
        self._heat_total = 0
        self._samples: Dict[str, List[bytes]] = {
            cls: [] for cls in QUERY_CLASSES
        }
        self._class_ops: Dict[str, int] = {cls: 0 for cls in QUERY_CLASSES}
        #: (query_class, replica_id) -> mean probe cost units.
        self._scores: Dict[tuple, float] = {}
        self._assignment: Dict[str, int] = {}
        self._ops_since_score = 0
        self._ops_since_beat = 0
        self._scored_once = False

    # ------------------------------------------------------------------
    # Heat classification
    # ------------------------------------------------------------------
    def bucket_of(self, key: bytes) -> int:
        """Deterministic range bucket of ``key`` (first two bytes)."""
        prefix = int.from_bytes(key[:2].ljust(2, b"\x00"), "big")
        return prefix * self.config.heat_buckets // 65536

    def note_access(self, key: bytes) -> None:
        """Fold one point access into the heat histogram."""
        self._heat[self.bucket_of(key)] += 1
        self._heat_total += 1

    def is_hot(self, key: bytes) -> bool:
        """Whether ``key``'s bucket exceeds the hot share threshold.

        Cold until at least one access per bucket has been seen on
        average — a near-empty histogram says nothing about skew.
        """
        total = self._heat_total
        if total < self.config.heat_buckets:
            return False
        count = self._heat[self.bucket_of(key)]
        return count * self.config.heat_buckets > (
            self.config.hot_multiplier * total
        )

    def classify_point(self, key: bytes) -> str:
        return "point_hot" if self.is_hot(key) else "point_cold"

    def observe(self, query_class: str, keys: Sequence[bytes]) -> None:
        """Record ``keys`` as recent probes for ``query_class``."""
        buffer = self._samples[query_class]
        limit = self.config.probe_keys
        for key in keys:
            buffer.append(key)
        if len(buffer) > limit:
            del buffer[: len(buffer) - limit]

    def class_mix(self) -> Dict[str, float]:
        """Observed share of operations per query class."""
        total = sum(self._class_ops.values())
        if not total:
            return {cls: 0.0 for cls in QUERY_CLASSES}
        return {
            cls: count / total for cls, count in self._class_ops.items()
        }

    # ------------------------------------------------------------------
    # Cadence
    # ------------------------------------------------------------------
    def tick(self, ops: int, query_class: Optional[str] = None) -> None:
        """Advance the op clock; fire heartbeat/scoring at boundaries."""
        if query_class is not None:
            self._class_ops[query_class] += ops
        self._ops_since_beat += ops
        if self._ops_since_beat >= self.config.heartbeat_interval_ops:
            self._ops_since_beat = 0
            self.heartbeat()
        self._ops_since_score += ops
        if self._ops_since_score >= self.config.score_interval_ops:
            self._ops_since_score = 0
            self.score_round()

    # ------------------------------------------------------------------
    # Heartbeat / failover
    # ------------------------------------------------------------------
    def up_replicas(self) -> List:
        return [replica for replica in self.replicas if replica.up]

    def heartbeat(self) -> None:
        """Consume one heartbeat per replica; apply up/down transitions.

        Replicas are beaten in id order, so a scripted plan replayed
        against the same op stream produces the same down/up timeline.
        """
        faults = self.config.faults
        if faults is None:
            return
        for replica in self.replicas:
            failed = faults.take_heartbeat(replica.replica_id)
            if failed and replica.up:
                replica.up = False
                self._fail_over(replica)
            elif not failed and not replica.up:
                replica.up = True
                self._readmit(replica)

    def _fail_over(self, replica) -> None:
        """Reroute the down replica's classes to the next-cheapest up."""
        rerouted = False
        for cls in QUERY_CLASSES:
            if self._assignment.get(cls) != replica.replica_id:
                continue
            target = self._cheapest(cls)
            if target is None:
                continue  # no survivor; reads will raise downstream
            self._assignment[cls] = target.replica_id
            rerouted = True
            if obs.is_enabled():
                obs.emit(ReplicaFailoverEvent(
                    replica=replica.replica_id, query_class=cls,
                    to_replica=target.replica_id, reason="heartbeat",
                ))
                obs.emit(ReplicaRouteEvent(
                    query_class=cls, replica=target.replica_id,
                    cost_units=self._scores.get(
                        (cls, target.replica_id), 0.0),
                    candidates=len(self.up_replicas()), reason="failover",
                ))
        if not rerouted and obs.is_enabled():
            obs.emit(ReplicaFailoverEvent(
                replica=replica.replica_id, query_class="",
                to_replica=-1, reason="heartbeat",
            ))

    def _readmit(self, replica) -> None:
        """Re-admit a recovered replica from the cached score table.

        No probes run and nothing is rebuilt — the replica kept
        receiving writes while down, so its index is current and
        recovery costs nothing beyond moving routes back.
        """
        if obs.is_enabled():
            obs.emit(ReplicaFailoverEvent(
                replica=replica.replica_id, query_class="",
                to_replica=replica.replica_id, reason="recover",
            ))
        for cls in QUERY_CLASSES:
            current = self._assignment.get(cls)
            if current is None or current == replica.replica_id:
                continue
            returned = self._scores.get((cls, replica.replica_id))
            incumbent = self._scores.get((cls, current))
            if returned is None:
                continue
            if incumbent is None or (returned, replica.replica_id) < (
                incumbent, current
            ):
                self._assignment[cls] = replica.replica_id
                if obs.is_enabled():
                    obs.emit(ReplicaRouteEvent(
                        query_class=cls, replica=replica.replica_id,
                        cost_units=returned,
                        candidates=len(self.up_replicas()),
                        reason="recover",
                    ))

    # ------------------------------------------------------------------
    # What-if scoring
    # ------------------------------------------------------------------
    def _probe(self, query_class: str, index, keys: Sequence[bytes]) -> int:
        """Run ``query_class``'s probe ops against ``index``; count them.

        ``point_cold`` probes first evict the probe key from the
        candidate's row caches: the sample keys were *just* served (that
        is how they were sampled), so a cached hit would price the
        replica as if cold keys stayed resident — the opposite of what
        defines the class.  Hot and batch probes keep their cached
        paths; residency is exactly the property being priced there.
        """
        if query_class == "scan":
            for key in keys:
                index.scan(key, self.config.scan_probe_count)
            return len(keys)
        if query_class == "batch":
            index.lookup_batch(list(keys))
            return len(keys)
        if query_class == "point_cold":
            for cache in self._caches_of(index):
                for key in keys:
                    cache.invalidate_key(key)
        for key in keys:
            index.lookup(key)
        return len(keys)

    @staticmethod
    def _caches_of(index) -> List:
        caches = getattr(index, "caches", None)
        if callable(caches):
            return caches()
        cache = getattr(index, "cache", None)
        return [cache] if cache is not None else []

    def score_round(self) -> Dict[tuple, float]:
        """Probe every (class, up replica) pair; reassign routes.

        Probe work executes against the shared cost model and is then
        rebated (:meth:`~repro.memory.cost_model.CostModel.
        rebate_delta`), leaving only the deterministic advisor fee —
        ``advisor_fee_units`` per scored pair — on the ledger.
        """
        self._scored_once = True
        up = self.up_replicas()
        scored_pairs = 0
        for cls in QUERY_CLASSES:
            keys = self._samples[cls]
            if not keys:
                continue
            for replica in up:
                with self.cost.measure() as delta:
                    probes = self._probe(cls, replica.index, keys)
                self.cost.rebate_delta(delta)
                self._scores[(cls, replica.replica_id)] = (
                    delta.weighted_cost() / probes
                )
                scored_pairs += 1
        if scored_pairs:
            self.cost.fixed_ops(self.config.advisor_fee_units * scored_pairs)
        for cls in QUERY_CLASSES:
            if not self._samples[cls]:
                continue
            target = self._cheapest(cls)
            if target is None:
                continue
            previous = self._assignment.get(cls)
            self._assignment[cls] = target.replica_id
            if obs.is_enabled() and previous != target.replica_id:
                obs.emit(ReplicaRouteEvent(
                    query_class=cls, replica=target.replica_id,
                    cost_units=self._scores[(cls, target.replica_id)],
                    candidates=len(up), reason="score",
                ))
        return dict(self._scores)

    def invalidate(self, replica_id: int) -> None:
        """Drop a replica's cached scores (after a rebuild)."""
        for cls in QUERY_CLASSES:
            self._scores.pop((cls, replica_id), None)

    def _cheapest(self, query_class: str):
        """The up replica with the lowest cached score for the class.

        Unscored up replicas rank after scored ones; with no scores at
        all the lowest-id up replica wins.  Returns None when every
        replica is down.
        """
        up = self.up_replicas()
        if not up:
            return None
        return min(
            up,
            key=lambda replica: (
                self._scores.get(
                    (query_class, replica.replica_id), float("inf")
                ),
                replica.replica_id,
            ),
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def replica_for(self, query_class: str):
        """The replica currently serving ``query_class`` reads.

        The first read triggers an initial scoring round (lazy, so the
        build path stays probe-free); a stale assignment to a down
        replica falls back to the cheapest survivor.
        """
        if not self._scored_once:
            self.score_round()
        rid = self._assignment.get(query_class)
        if rid is not None:
            replica = self.replicas[rid]
            if replica.up:
                return replica
        target = self._cheapest(query_class)
        if target is None:
            raise RuntimeError(
                "no replica is up; reads cannot be served"
            )
        return target

    def assignment(self) -> Dict[str, int]:
        """Current class -> replica-id routing table (copy)."""
        return dict(self._assignment)

    def scores(self) -> Dict[tuple, float]:
        """Cached (class, replica) -> cost-units score table (copy)."""
        return dict(self._scores)
