"""Configuration of the replicated cluster tier.

A :class:`ReplicaConfig` describes N replicas of one table's index,
each built from a :class:`ReplicaProfile` naming a registered index
kind plus its elastic/cache knobs.  The point of the tier (ROADMAP:
"Unlocking the Power of Diversity in Index Tuning") is that profiles
*diverge*: one replica sits fat and scan-friendly, one trades leaves
for a hot-row cache, one shrinks deep into compact territory — all
under one cluster-global soft bound apportioned by profile weight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.cache import CacheConfig
from repro.engine.faults import FaultPlan
from repro.errors import ReplicaConfigError

#: The query classes the router prices and routes independently.
QUERY_CLASSES = ("point_hot", "point_cold", "batch", "scan")

#: Kinds whose builder consumes ``size_bound_bytes`` (the elastic
#: family); other registry kinds ignore the bound, so apportioning
#: budget to them would silently vanish — validation rejects that.
BOUNDED_KINDS = ("elastic",)


@dataclass(frozen=True)
class ReplicaProfile:
    """One replica's point on the space/efficiency tradeoff curve.

    Args:
        name: Label used in events, metrics, and the arbiter registry.
        kind: Registered index name (``repro.registry``); ``"elastic"``
            profiles receive a byte share of the cluster bound.
        weight: Share of the cluster-global soft bound this replica
            receives (largest-remainder over all profile weights).
        leaf_kinds: ``ElasticConfig.leaf_kinds`` selection for elastic
            profiles (``None`` keeps the config default); the 3-kind
            lattice is ``("standard", "compact", "learned")``.
        cache: Optional :class:`~repro.cache.CacheConfig` — the
            cache-heavy profile; budget is charged against the
            replica's allocator like any other index bytes.
        index_kwargs: Extra builder keywords as a tuple of ``(key,
            value)`` pairs (kept hashable so profiles stay frozen),
            e.g. ``(("shrink_trigger_fraction", 0.6),)`` for a
            compact-heavy elastic profile.
    """

    name: str
    kind: str = "elastic"
    weight: float = 1.0
    leaf_kinds: Optional[Tuple[str, ...]] = None
    cache: Optional[CacheConfig] = None
    index_kwargs: Tuple[Tuple[str, object], ...] = ()

    def builder_kwargs(self) -> dict:
        """The profile's extra ``build_index`` keywords."""
        kwargs = dict(self.index_kwargs)
        if self.leaf_kinds is not None:
            kwargs["leaf_kinds"] = tuple(self.leaf_kinds)
        return kwargs

    def validate(self) -> None:
        if not self.name:
            raise ReplicaConfigError("replica profile needs a name")
        if self.weight <= 0:
            raise ReplicaConfigError(
                f"profile {self.name!r}: weight must be positive, "
                f"got {self.weight}"
            )
        if self.cache is not None:
            self.cache.validate()
        if self.leaf_kinds is not None and self.kind not in BOUNDED_KINDS:
            raise ReplicaConfigError(
                f"profile {self.name!r}: leaf_kinds only applies to "
                f"elastic kinds, not {self.kind!r}"
            )


def preset_profile(name: str, weight: float = 1.0) -> ReplicaProfile:
    """The divergent configurations named in the ROADMAP, by preset.

    * ``"lattice"`` — the elastic 3-kind lattice (standard / compact /
      learned leaves), the best all-round read replica.
    * ``"compact"`` — compact-heavy: shrink triggers pulled down so the
      tree converts early and sits small.
    * ``"cache"`` — cache-heavy: a 2-kind elastic tree plus an adaptive
      hot-row cache competing under the same bound.
    * ``"baseline"`` — the non-elastic STX-style baseline (pairs with
      hash partitioning for the classic hash-sharded configuration).
    """
    if name == "lattice":
        return ReplicaProfile(
            name="lattice", kind="elastic", weight=weight,
            leaf_kinds=("standard", "compact", "learned"),
        )
    if name == "compact":
        return ReplicaProfile(
            name="compact", kind="elastic", weight=weight,
            index_kwargs=(
                ("shrink_trigger_fraction", 0.6),
                ("expand_trigger_fraction", 0.45),
            ),
        )
    if name == "cache":
        return ReplicaProfile(
            name="cache", kind="elastic", weight=weight,
            cache=CacheConfig(budget_bytes=16 * 1024, adaptive=False),
        )
    if name == "baseline":
        return ReplicaProfile(name="baseline", kind="stx", weight=weight)
    raise ReplicaConfigError(
        f"unknown replica preset {name!r}; choose from "
        "lattice/compact/cache/baseline"
    )


@dataclass(frozen=True)
class ReplicaConfig:
    """Knobs of one :class:`~repro.cluster.ReplicaSet`.

    Args:
        replicas: Number of full copies of the index.  ``1`` is the
            exact passthrough: ``Database.create_index`` builds the
            plain (or sharded) index with no cluster machinery at all,
            byte-identical to every pre-cluster baseline.
        profiles: Per-replica :class:`ReplicaProfile` tuple; empty
            means uniform (every replica built from the
            ``create_index`` kind/kwargs at equal weight).
        total_bound_bytes: Cluster-global soft bound apportioned across
            the elastic replicas by profile weight; ``None`` falls back
            to the ``size_bound_bytes`` passed to ``create_index``.
        score_interval_ops: Operations between what-if scoring rounds.
        probe_keys: Representative keys retained per query class for
            what-if probes (the most recent ``probe_keys`` observed).
        scan_probe_count: Items per what-if scan probe.
        heartbeat_interval_ops: Operations between heartbeats (the
            granularity at which a scripted outage takes effect).
        heat_buckets: Key-range buckets of the router's access
            histogram (hot/cold classification).
        hot_multiplier: A key is *hot* when its bucket's access share
            exceeds ``hot_multiplier / heat_buckets`` (i.e. that many
            times the uniform share).
        advisor_fee_units: Fixed-op units charged per (class, replica)
            scored in a what-if round — the modeled price of running
            the advisor, since the probe work itself is rebated.
        faults: Optional :class:`~repro.engine.FaultPlan` scripting
            replica outages (``plan.down(replica=k, beats=n)``).
    """

    replicas: int = 1
    profiles: Tuple[ReplicaProfile, ...] = ()
    total_bound_bytes: Optional[int] = None
    score_interval_ops: int = 1024
    probe_keys: int = 4
    scan_probe_count: int = 16
    heartbeat_interval_ops: int = 128
    heat_buckets: int = 64
    hot_multiplier: float = 2.0
    advisor_fee_units: float = 0.25
    faults: Optional[FaultPlan] = field(default=None, compare=False)

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ReplicaConfigError` if unusable."""
        if self.replicas < 1:
            raise ReplicaConfigError(
                f"replicas must be >= 1, got {self.replicas}"
            )
        if self.profiles and len(self.profiles) != self.replicas:
            raise ReplicaConfigError(
                f"{len(self.profiles)} profiles for {self.replicas} "
                "replicas (pass one per replica, or none for uniform)"
            )
        names = [p.name for p in self.profiles]
        if len(set(names)) != len(names):
            raise ReplicaConfigError(
                f"profile names must be unique, got {names}"
            )
        for profile in self.profiles:
            profile.validate()
        if self.total_bound_bytes is not None and self.total_bound_bytes <= 0:
            raise ReplicaConfigError(
                f"total_bound_bytes must be positive, "
                f"got {self.total_bound_bytes}"
            )
        for knob in ("score_interval_ops", "probe_keys", "scan_probe_count",
                     "heartbeat_interval_ops"):
            if getattr(self, knob) < 1:
                raise ReplicaConfigError(
                    f"{knob} must be >= 1, got {getattr(self, knob)}"
                )
        if self.heat_buckets < 2:
            raise ReplicaConfigError(
                f"heat_buckets must be >= 2, got {self.heat_buckets}"
            )
        if self.hot_multiplier <= 1.0:
            raise ReplicaConfigError(
                "hot_multiplier must exceed 1.0 (a bucket at the uniform "
                f"share is not hot), got {self.hot_multiplier}"
            )
        if self.advisor_fee_units < 0:
            raise ReplicaConfigError(
                f"advisor_fee_units must be >= 0, "
                f"got {self.advisor_fee_units}"
            )

    def resolved_profiles(self, kind: str,
                          cache: Optional[CacheConfig] = None,
                          **index_kwargs) -> Tuple[ReplicaProfile, ...]:
        """The effective per-replica profiles.

        An empty ``profiles`` tuple resolves to ``replicas`` uniform
        copies of the ``create_index``-level configuration; explicit
        profiles are returned as given (the ``create_index`` kwargs
        then apply only where a profile does not override them).
        """
        if self.profiles:
            return self.profiles
        return tuple(
            ReplicaProfile(
                name=f"{kind}-{i}", kind=kind, weight=1.0, cache=cache,
                index_kwargs=tuple(sorted(index_kwargs.items())),
            )
            for i in range(self.replicas)
        )
