"""Deterministic memory-hierarchy cost model.

Why this exists (see DESIGN.md, "substitutions"): the paper's performance
results are memory-hierarchy effects — indirect key loads dominate scans
on tries, node locality dominates B+-tree search, copying dominates
compaction.  CPython wall-clock time is dominated by interpreter overhead
instead, so every index in this library *also* charges its work to a
``CostModel``.  The benchmark harness reports throughput as
``operations / weighted cost``, which is scale-free and deterministic.

Event categories
----------------
``rand_line``
    A cache line touched at an unpredictable address (pointer chase into a
    node, first line of a binary-search probe).  Unit cost 1.0 — this is
    the DRAM-latency yardstick everything else is calibrated against.
``seq_line``
    A cache line touched sequentially after another line of the same
    object (array scans inside a node).  Hardware prefetchers hide most of
    this latency; calibrated at 0.25.
``key_load``
    An *indirect* key load: following a tuple id into the database table
    to fetch the key (the defining cost of blind tries / HOT, paper
    sections 2 and 5).  A random DRAM access plus TLB pressure: 1.25.
``key_load_batched``
    An indirect key load issued as part of a batch of *independent*
    loads (scan iteration over a compact leaf or HOT).  Out-of-order
    cores overlap several such misses (memory-level parallelism), so the
    effective per-load cost is ~one third of a dependent load: 0.45.
    This is what keeps the paper's scan gaps at 1.5-2.3x rather than 4x.
``compare``
    One key comparison or one discriminating-bit test: ALU work that
    overlaps misses almost entirely; 0.02.
``branch``
    One hard-to-predict branch (per probed element); 0.01.
``alloc`` / ``free``
    Allocator round trip, fixed part; 1.5 per call (jemalloc fast path is
    tens of cycles, but conversions allocate cold memory).
``copy_line``
    One cache line's worth of bytes copied (memmove during shifts,
    conversions, consolidation); 0.25 per 64 B.
``fixed_op``
    Fixed per-operation dispatch overhead outside the index (network +
    engine dispatch in the MCAS experiments, section 6.3); weight 1.0 and
    charged in *units* chosen by the caller.
``cache_hit``
    One probe of an in-process software cache (``repro.cache``): a hash
    on a key that is already hot in the L1/L2 working set of the probe
    structure.  Charged on every probe — hit *or* miss — so cached reads
    stay honestly accountable; calibrated at 0.1 (an order of magnitude
    under ``rand_line``, well above free).

Calibration: with these weights, a 16-slot STX leaf search costs about
4–5 units (root-to-leaf pointer chases dominate) and a 15-key scan costs
about 2 extra units on a B+-tree versus about 19 on an indirect-key index
— matching the paper's 1.5–2x scan gap once tree traversal is included.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Dict, Iterator, Sequence, Tuple
from contextlib import contextmanager


@dataclass(frozen=True)
class CostWeights:
    """Weight (in DRAM-miss units) of each cost-model event category."""

    rand_line: float = 1.0
    seq_line: float = 0.25
    key_load: float = 1.25
    key_load_batched: float = 0.45
    compare: float = 0.02
    branch: float = 0.01
    alloc: float = 1.5
    free: float = 0.75
    copy_line: float = 0.25
    fixed_op: float = 1.0
    cache_hit: float = 0.1

    def as_dict(self) -> Dict[str, float]:
        """Return the weights as a plain dict keyed by category name.

        The dict is computed once and cached on the (frozen) instance:
        ``weighted_cost``/``tagged_cost`` sit on the benchmark hot path
        and ``dataclasses.asdict`` is far too slow to re-run per call.
        A copy is returned so callers may mutate their dict freely.
        """
        return dict(self._weight_map())

    def _weight_map(self) -> Dict[str, float]:
        """The cached weight dict itself (internal: do not mutate)."""
        cached = self.__dict__.get("_weight_cache")
        if cached is None:
            cached = asdict(self)
            object.__setattr__(self, "_weight_cache", cached)
        return cached


_CACHE_LINE = 64


@dataclass
class CostModel:
    """Accumulates weighted memory-hierarchy events.

    All indexes in this library accept a ``CostModel`` and charge their
    work to it.  A single model is typically shared between an index and
    its backing :class:`~repro.table.Table` so that indirect key loads
    (``key_load`` events) appear in the same account.
    """

    weights: CostWeights = field(default_factory=CostWeights)
    counts: Dict[str, int] = field(default_factory=dict)
    enabled: bool = True
    #: Per-tag event counts for attributed charging (see ``attributed_to``).
    tagged: Dict[str, Dict[str, int]] = field(default_factory=dict)
    _attribution: str = field(default="", repr=False)
    #: Nesting depth of :meth:`mlp_batch` blocks.  When positive,
    #: dependent key loads charge as independent (batched) loads.
    _mlp_depth: int = field(default=0, repr=False)

    # ------------------------------------------------------------------
    # Charging primitives
    # ------------------------------------------------------------------
    def charge(self, category: str, count: int = 1) -> None:
        """Record ``count`` events of ``category``."""
        # Hot path: millions of calls per benchmark.  One early-exit test,
        # local dict binding, no attribute re-lookups.
        if not (count and self.enabled):
            return
        counts = self.counts
        counts[category] = counts.get(category, 0) + count
        if self._attribution:
            bucket = self.tagged.setdefault(self._attribution, {})
            bucket[category] = bucket.get(category, 0) + count

    def rand_lines(self, n: int = 1) -> None:
        """Charge ``n`` randomly-addressed cache line touches."""
        self.charge("rand_line", n)

    def seq_lines(self, n: int = 1) -> None:
        """Charge ``n`` sequentially-prefetched cache line touches."""
        self.charge("seq_line", n)

    def key_loads(self, n: int = 1) -> None:
        """Charge ``n`` dependent indirect key loads from the table.

        Inside an :meth:`mlp_batch` block the loads belong to a batch of
        independent accesses and charge at the overlapped (batched) rate.
        """
        if self._mlp_depth:
            self.charge("key_load_batched", n)
        else:
            self.charge("key_load", n)

    def key_loads_batched(self, n: int = 1) -> None:
        """Charge ``n`` independent (overlappable) indirect key loads."""
        self.charge("key_load_batched", n)

    def compares(self, n: int = 1) -> None:
        """Charge ``n`` key comparisons / bit tests."""
        self.charge("compare", n)

    def branches(self, n: int = 1) -> None:
        """Charge ``n`` hard-to-predict branches."""
        self.charge("branch", n)

    def allocs(self, n: int = 1) -> None:
        """Charge ``n`` allocator calls."""
        self.charge("alloc", n)

    def frees(self, n: int = 1) -> None:
        """Charge ``n`` deallocation calls."""
        self.charge("free", n)

    def copy_bytes(self, nbytes: int) -> None:
        """Charge a copy of ``nbytes`` bytes, rounded up to cache lines."""
        if nbytes > 0:
            self.charge("copy_line", (nbytes + _CACHE_LINE - 1) // _CACHE_LINE)

    def touch_bytes_seq(self, nbytes: int) -> None:
        """Charge a sequential read of ``nbytes`` bytes (first line random)."""
        if nbytes <= 0:
            return
        lines = (nbytes + _CACHE_LINE - 1) // _CACHE_LINE
        self.rand_lines(1)
        if lines > 1:
            self.seq_lines(lines - 1)

    def cache_hits(self, n: int = 1) -> None:
        """Charge ``n`` software-cache probes (``repro.cache``)."""
        self.charge("cache_hit", n)

    def fixed_ops(self, units: float = 1.0) -> None:
        """Charge fixed per-operation overhead (in whole units)."""
        # Stored scaled by 1000 to keep counters integral.
        self.charge("fixed_op_milli", int(units * 1000))

    def rebate_delta(self, delta: "CostModel") -> None:
        """Remove a previously-charged event delta from the ledger.

        The parallel executor measures every shard's sub-batch against
        the shared model (so the work *is* charged as it executes) and
        then rebates the events hidden behind the critical path — work
        overlapped by a concurrently-executing shard costs no latency.
        Implemented as negative charges so attribution buckets stay
        consistent with the original charge.
        """
        for category, count in delta.counts.items():
            self.charge(category, -count)

    def charge_parallel(
        self,
        deltas: Sequence["CostModel"],
        width: int,
        coordination_units: float = 0.0,
    ) -> Tuple[float, float]:
        """Critical-path combinator over concurrently-executed deltas.

        ``deltas`` are per-task event deltas (from :meth:`measure`)
        whose events have *already* been charged to this model — the
        serial sum.  Execution overlaps ``width`` tasks at a time, so
        only the most expensive member of each wave of ``width``
        consecutive deltas contributes latency; the other members'
        events are rebated.  A ``coordination_units`` fee (``fixed_op``
        units, the scatter/merge bookkeeping) is charged on top.

        Returns ``(serial_sum_units, critical_path_units)``, where the
        critical path includes the coordination fee.  Ties inside a
        wave keep the earliest delta, so the outcome is deterministic
        for any completion order.
        """
        if width < 1:
            raise ValueError("parallel width must be positive")
        critical = 0.0
        costs = [delta.weighted_cost() for delta in deltas]
        serial_sum = sum(costs)
        for start in range(0, len(deltas), width):
            wave = range(start, min(start + width, len(deltas)))
            keep = max(wave, key=lambda i: (costs[i], -i))
            critical += costs[keep]
            for i in wave:
                if i != keep:
                    self.rebate_delta(deltas[i])
        if coordination_units:
            self.fixed_ops(coordination_units)
            critical += coordination_units * self.weights.fixed_op
        return serial_sum, critical

    @contextmanager
    def mlp_batch(self) -> Iterator[None]:
        """Treat dependent key loads inside the block as members of a
        batch of *independent* loads.

        Batched execution turns the one-verify-load-per-lookup pointer
        chase into many outstanding loads an out-of-order core overlaps
        (memory-level parallelism, cf. the Cuckoo Trie); under this block
        ``key_loads`` charges at the ``key_load_batched`` rate.  Nests.
        """
        self._mlp_depth += 1
        try:
            yield
        finally:
            self._mlp_depth -= 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def weighted_cost(self) -> float:
        """Total cost in DRAM-miss units under the configured weights."""
        weights = self.weights._weight_map()
        total = 0.0
        for category, count in self.counts.items():
            if category == "fixed_op_milli":
                total += weights["fixed_op"] * (count / 1000.0)
            else:
                total += weights.get(category, 0.0) * count
        return total

    def snapshot(self) -> Dict[str, int]:
        """Copy of the raw event counters."""
        return dict(self.counts)

    def reset(self) -> None:
        """Clear all counters."""
        self.counts.clear()
        self.tagged.clear()

    @contextmanager
    def measure(self) -> Iterator["CostModel"]:
        """Context manager yielding a delta view: counters are snapshotted
        on entry, and on exit the yielded model holds only the delta."""
        before = self.snapshot()
        delta = CostModel(weights=self.weights)
        yield delta
        after = self.snapshot()
        for category in after:
            diff = after[category] - before.get(category, 0)
            if diff:
                delta.counts[category] = diff

    @contextmanager
    def attributed_to(self, tag: str) -> Iterator[None]:
        """Attribute charges inside the block to ``tag`` (in addition to
        the global counters).  The innermost attribution wins on nesting.
        Used for profiling breakdowns like section 6.1's "18.3% of
        execution is elasticity work"."""
        previous = self._attribution
        self._attribution = tag
        try:
            yield
        finally:
            self._attribution = previous

    def tagged_cost(self, tag: str) -> float:
        """Weighted cost of the events attributed to ``tag``."""
        weights = self.weights._weight_map()
        total = 0.0
        for category, count in self.tagged.get(tag, {}).items():
            if category == "fixed_op_milli":
                total += weights["fixed_op"] * (count / 1000.0)
            else:
                total += weights.get(category, 0.0) * count
        return total

    @contextmanager
    def paused(self) -> Iterator[None]:
        """Temporarily stop charging (used for test setup phases)."""
        previous = self.enabled
        self.enabled = False
        try:
            yield
        finally:
            self.enabled = previous


#: A shared disabled model for callers that do not care about costs.
NULL_COST_MODEL = CostModel(enabled=False)
