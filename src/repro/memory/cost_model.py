"""Deterministic memory-hierarchy cost model.

Why this exists (see DESIGN.md, "substitutions"): the paper's performance
results are memory-hierarchy effects — indirect key loads dominate scans
on tries, node locality dominates B+-tree search, copying dominates
compaction.  CPython wall-clock time is dominated by interpreter overhead
instead, so every index in this library *also* charges its work to a
``CostModel``.  The benchmark harness reports throughput as
``operations / weighted cost``, which is scale-free and deterministic.

Event categories
----------------
``rand_line``
    A cache line touched at an unpredictable address (pointer chase into a
    node, first line of a binary-search probe).  Unit cost 1.0 — this is
    the DRAM-latency yardstick everything else is calibrated against.
``seq_line``
    A cache line touched sequentially after another line of the same
    object (array scans inside a node).  Hardware prefetchers hide most of
    this latency; calibrated at 0.25.
``key_load``
    An *indirect* key load: following a tuple id into the database table
    to fetch the key (the defining cost of blind tries / HOT, paper
    sections 2 and 5).  A random DRAM access plus TLB pressure: 1.25.
``key_load_batched``
    An indirect key load issued as part of a batch of *independent*
    loads (scan iteration over a compact leaf or HOT).  Out-of-order
    cores overlap several such misses (memory-level parallelism), so the
    effective per-load cost is ~one third of a dependent load: 0.45.
    This is what keeps the paper's scan gaps at 1.5-2.3x rather than 4x.
``compare``
    One key comparison or one discriminating-bit test: ALU work that
    overlaps misses almost entirely; 0.02.
``branch``
    One hard-to-predict branch (per probed element); 0.01.
``alloc`` / ``free``
    Allocator round trip, fixed part; 1.5 per call (jemalloc fast path is
    tens of cycles, but conversions allocate cold memory).
``copy_line``
    One cache line's worth of bytes copied (memmove during shifts,
    conversions, consolidation); 0.25 per 64 B.
``fixed_op``
    Fixed per-operation dispatch overhead outside the index (network +
    engine dispatch in the MCAS experiments, section 6.3); weight 1.0 and
    charged in *units* chosen by the caller.
``cache_hit``
    One probe of an in-process software cache (``repro.cache``): a hash
    on a key that is already hot in the L1/L2 working set of the probe
    structure.  Charged on every probe — hit *or* miss — so cached reads
    stay honestly accountable; calibrated at 0.1 (an order of magnitude
    under ``rand_line``, well above free).
``model_eval``
    One learned-model inference on the search path (``repro.learned``):
    locating the covering linear segment (a short binary search over an
    in-cache fence array) plus one fused multiply-add and a clamp to
    predict a position.  Pure ALU work on data that the segment array's
    small footprint keeps resident in L1/L2, so it overlaps the leaf's
    line touch almost entirely; calibrated at 0.15 — above a ``compare``
    (it is several of them plus the FMA) but well under any DRAM miss.
``log_append``
    One write-ahead-log record appended to a shard's in-memory log
    buffer (``repro.wal``): serializing a fixed-width row image into a
    sequential, already-resident buffer page.  Mostly streaming stores
    that retire behind the row write itself; calibrated at 0.5 — two
    sequential lines' worth of work, well under any random miss.
``log_fsync``
    One durability barrier on one log stream (the modeled ``fsync``):
    forcing the stream's appended-but-volatile suffix to stable media
    and advancing its durable watermark.  Device flush latency dwarfs
    every DRAM figure; calibrated at 32.0 (tens of microseconds against
    a ~100 ns miss yardstick).  Group commit amortizes this: one
    barrier covers every record of a commit group, mirroring how
    ``wave_issue`` amortizes one miss latency across a prefetch wave —
    which is exactly the saving the ``wal`` experiment gates on.
``wave_issue``
    Per-wave orchestration fee of prefetch-wave accounting (see
    :meth:`CostModel.mlp_window`): issuing a group of independent loads
    as one wave of outstanding misses costs the software-prefetch /
    line-fill-buffer steering work on top of the single overlapped
    miss latency the wave charges.  Calibrated at 0.10 so that a
    key-load wave of width 3 prices each load at ``(1.25 + 0.10) / 3 =
    0.45`` — exactly the ``key_load_batched`` rate, recovering the
    Broadwell-derived ~3x effective-MLP calibration as the W=3 fixed
    point of the general combinator.

Calibration: with these weights, a 16-slot STX leaf search costs about
4–5 units (root-to-leaf pointer chases dominate) and a 15-key scan costs
about 2 extra units on a B+-tree versus about 19 on an indirect-key index
— matching the paper's 1.5–2x scan gap once tree traversal is included.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Dict, Iterator, Optional, Sequence, Tuple
from contextlib import contextmanager


@dataclass(frozen=True)
class CostWeights:
    """Weight (in DRAM-miss units) of each cost-model event category."""

    rand_line: float = 1.0
    seq_line: float = 0.25
    key_load: float = 1.25
    key_load_batched: float = 0.45
    compare: float = 0.02
    branch: float = 0.01
    alloc: float = 1.5
    free: float = 0.75
    copy_line: float = 0.25
    fixed_op: float = 1.0
    cache_hit: float = 0.1
    wave_issue: float = 0.1
    model_eval: float = 0.15
    log_append: float = 0.5
    log_fsync: float = 32.0

    def as_dict(self) -> Dict[str, float]:
        """Return the weights as a plain dict keyed by category name.

        The dict is computed once and cached on the (frozen) instance:
        ``weighted_cost``/``tagged_cost`` sit on the benchmark hot path
        and ``dataclasses.asdict`` is far too slow to re-run per call.
        A copy is returned so callers may mutate their dict freely.
        """
        return dict(self._weight_map())

    def _weight_map(self) -> Dict[str, float]:
        """The cached weight dict itself (internal: do not mutate)."""
        cached = self.__dict__.get("_weight_cache")
        if cached is None:
            cached = asdict(self)
            object.__setattr__(self, "_weight_cache", cached)
        return cached


_CACHE_LINE = 64


@dataclass
class WaveStats:
    """Prefetch-wave accounting tallies (one window, or the cumulative
    totals on a :class:`CostModel`).

    ``loads`` counts the independent loads priced through waves,
    ``waves`` the wave issues charged for them.  ``serial_units`` is
    what fully *dependent* (serial) pricing would have charged for the
    same loads — each load at its category's full weight — and
    ``wave_units`` is what wave pricing actually charged (one
    category-weight miss plus one ``wave_issue`` fee per wave), so
    ``saved_units`` is the latency the memory-level parallelism hid.
    """

    width: int = 1
    loads: int = 0
    waves: int = 0
    serial_units: float = 0.0
    wave_units: float = 0.0

    @property
    def overlapped(self) -> int:
        """Loads that rode behind another load's miss latency."""
        return self.loads - self.waves

    @property
    def saved_units(self) -> float:
        """Cost units hidden versus serial (dependent-load) pricing."""
        return self.serial_units - self.wave_units

    def fold(self, other: "WaveStats") -> None:
        """Accumulate ``other``'s tallies into this instance."""
        self.loads += other.loads
        self.waves += other.waves
        self.serial_units += other.serial_units
        self.wave_units += other.wave_units


class _WaveWindow:
    """Open-window state for :meth:`CostModel.mlp_window` (internal)."""

    __slots__ = ("width", "pending", "stats", "depth")

    def __init__(self, width: int) -> None:
        self.width = width
        #: Per-category loads not yet grouped into a complete wave.
        self.pending: Dict[str, int] = {}
        self.stats = WaveStats(width=width)
        self.depth = 1


@dataclass
class CostModel:
    """Accumulates weighted memory-hierarchy events.

    All indexes in this library accept a ``CostModel`` and charge their
    work to it.  A single model is typically shared between an index and
    its backing :class:`~repro.table.Table` so that indirect key loads
    (``key_load`` events) appear in the same account.
    """

    weights: CostWeights = field(default_factory=CostWeights)
    counts: Dict[str, int] = field(default_factory=dict)
    enabled: bool = True
    #: Per-tag event counts for attributed charging (see ``attributed_to``).
    tagged: Dict[str, Dict[str, int]] = field(default_factory=dict)
    _attribution: str = field(default="", repr=False)
    #: Nesting depth of :meth:`mlp_batch` blocks.  When positive,
    #: dependent key loads charge as independent (batched) loads.
    _mlp_depth: int = field(default=0, repr=False)
    #: Default prefetch-wave width for :meth:`mlp_window`.  1 disables
    #: wave pricing entirely (exact serial passthrough, no issue fee),
    #: so every pre-wave baseline reproduces byte-for-byte by default.
    mlp_width: int = 1
    #: Cumulative wave tallies across all closed windows (see
    #: :meth:`mlp_summary`); cleared by :meth:`reset`.
    mlp_totals: WaveStats = field(default_factory=WaveStats, repr=False)
    _wave: Optional[_WaveWindow] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Charging primitives
    # ------------------------------------------------------------------
    def charge(self, category: str, count: int = 1) -> None:
        """Record ``count`` events of ``category``."""
        # Hot path: millions of calls per benchmark.  One early-exit test,
        # local dict binding, no attribute re-lookups.
        if not (count and self.enabled):
            return
        counts = self.counts
        counts[category] = counts.get(category, 0) + count
        if self._attribution:
            bucket = self.tagged.setdefault(self._attribution, {})
            bucket[category] = bucket.get(category, 0) + count

    def rand_lines(self, n: int = 1) -> None:
        """Charge ``n`` randomly-addressed cache line touches."""
        self.charge("rand_line", n)

    def seq_lines(self, n: int = 1) -> None:
        """Charge ``n`` sequentially-prefetched cache line touches."""
        self.charge("seq_line", n)

    def key_loads(self, n: int = 1) -> None:
        """Charge ``n`` dependent indirect key loads from the table.

        Inside an :meth:`mlp_batch` block the loads belong to a batch of
        independent accesses and charge at the overlapped (batched) rate
        — or, when an :meth:`mlp_window` of width >= 2 is open, are
        grouped into prefetch waves of full-weight ``key_load`` events
        (the general form of the same discount; see the module
        docstring's W=3 fixed point).
        """
        if self._mlp_depth:
            if self._wave is not None:
                self.wave_loads("key_load", n)
            else:
                self.charge("key_load_batched", n)
        else:
            self.charge("key_load", n)

    def key_loads_batched(self, n: int = 1) -> None:
        """Charge ``n`` independent (overlappable) indirect key loads.

        Under an open :meth:`mlp_window` the loads join the window's
        ``key_load`` waves instead of taking the flat batched rate.
        """
        if self._wave is not None:
            self.wave_loads("key_load", n)
        else:
            self.charge("key_load_batched", n)

    def wave_loads(self, category: str, n: int = 1) -> None:
        """Charge ``n`` *independent* loads of ``category``, wave-priced.

        With no open :meth:`mlp_window` (or width 1) this is exactly
        :meth:`charge` — serial pricing, zero overhead.  Under a window
        of width ``W`` the loads accumulate per category; every ``W``
        accumulated loads complete one wave, charged as **one** event of
        ``category`` (max-of-wave: same-category loads share one weight,
        and the other ``W - 1`` misses overlap behind it) plus one
        ``wave_issue`` orchestration fee.  Partial waves are flushed at
        the same rate when the window closes.

        Only use this for loads that are genuinely independent (sibling
        subtree descents, per-group leaf accesses, batch verify loads) —
        dependent pointer chases within one root-to-leaf path must keep
        serial :meth:`rand_lines` pricing.
        """
        if not (n and self.enabled):
            return
        window = self._wave
        if window is None:
            self.charge(category, n)
            return
        weight = self.weights._weight_map().get(category, 0.0)
        stats = window.stats
        stats.loads += n
        stats.serial_units += n * weight
        complete, remainder = divmod(window.pending.get(category, 0) + n,
                                     window.width)
        if complete:
            self.charge(category, complete)
            self.charge("wave_issue", complete)
            stats.waves += complete
            stats.wave_units += complete * (weight + self.weights.wave_issue)
        window.pending[category] = remainder

    def model_evals(self, n: int = 1) -> None:
        """Charge ``n`` learned-model position predictions."""
        self.charge("model_eval", n)

    def log_appends(self, n: int = 1) -> None:
        """Charge ``n`` write-ahead-log record appends."""
        self.charge("log_append", n)

    def log_fsyncs(self, n: int = 1) -> None:
        """Charge ``n`` log-stream durability barriers (group commits)."""
        self.charge("log_fsync", n)

    def compares(self, n: int = 1) -> None:
        """Charge ``n`` key comparisons / bit tests."""
        self.charge("compare", n)

    def branches(self, n: int = 1) -> None:
        """Charge ``n`` hard-to-predict branches."""
        self.charge("branch", n)

    def allocs(self, n: int = 1) -> None:
        """Charge ``n`` allocator calls."""
        self.charge("alloc", n)

    def frees(self, n: int = 1) -> None:
        """Charge ``n`` deallocation calls."""
        self.charge("free", n)

    def copy_bytes(self, nbytes: int) -> None:
        """Charge a copy of ``nbytes`` bytes, rounded up to cache lines."""
        if nbytes > 0:
            self.charge("copy_line", (nbytes + _CACHE_LINE - 1) // _CACHE_LINE)

    def touch_bytes_seq(self, nbytes: int) -> None:
        """Charge a sequential read of ``nbytes`` bytes (first line random)."""
        if nbytes <= 0:
            return
        lines = (nbytes + _CACHE_LINE - 1) // _CACHE_LINE
        self.rand_lines(1)
        if lines > 1:
            self.seq_lines(lines - 1)

    def cache_hits(self, n: int = 1) -> None:
        """Charge ``n`` software-cache probes (``repro.cache``)."""
        self.charge("cache_hit", n)

    def fixed_ops(self, units: float = 1.0) -> None:
        """Charge fixed per-operation overhead (in whole units)."""
        # Stored scaled by 1000 to keep counters integral.
        self.charge("fixed_op_milli", int(units * 1000))

    def rebate_delta(self, delta: "CostModel") -> None:
        """Remove a previously-charged event delta from the ledger.

        The parallel executor measures every shard's sub-batch against
        the shared model (so the work *is* charged as it executes) and
        then rebates the events hidden behind the critical path — work
        overlapped by a concurrently-executing shard costs no latency.
        Rebates adjust only the **global** counters: attribution is
        suppressed while the negative charges land, so per-tag buckets
        keep recording the work that was *performed* and never pick up
        negative residues from a rebate issued under a different (or
        no) attribution context than the original charge.
        """
        previous = self._attribution
        self._attribution = ""
        try:
            for category, count in delta.counts.items():
                self.charge(category, -count)
        finally:
            self._attribution = previous

    def charge_parallel(
        self,
        deltas: Sequence["CostModel"],
        width: int,
        coordination_units: float = 0.0,
    ) -> Tuple[float, float]:
        """Critical-path combinator over concurrently-executed deltas.

        ``deltas`` are per-task event deltas (from :meth:`measure`)
        whose events have *already* been charged to this model — the
        serial sum.  Execution overlaps ``width`` tasks at a time, so
        only the most expensive member of each wave of ``width``
        consecutive deltas contributes latency; the other members'
        events are rebated.  A ``coordination_units`` fee (``fixed_op``
        units, the scatter/merge bookkeeping) is charged on top.

        Returns ``(serial_sum_units, critical_path_units)``, where the
        critical path includes the coordination fee.  Ties inside a
        wave keep the earliest delta, so the outcome is deterministic
        for any completion order.
        """
        if width < 1:
            raise ValueError("parallel width must be positive")
        critical = 0.0
        costs = [delta.weighted_cost() for delta in deltas]
        serial_sum = sum(costs)
        for start in range(0, len(deltas), width):
            wave = range(start, min(start + width, len(deltas)))
            keep = max(wave, key=lambda i: (costs[i], -i))
            critical += costs[keep]
            for i in wave:
                if i != keep:
                    self.rebate_delta(deltas[i])
        if coordination_units:
            self.fixed_ops(coordination_units)
            critical += coordination_units * self.weights.fixed_op
        return serial_sum, critical

    @contextmanager
    def mlp_batch(self) -> Iterator[None]:
        """Treat dependent key loads inside the block as members of a
        batch of *independent* loads.

        Batched execution turns the one-verify-load-per-lookup pointer
        chase into many outstanding loads an out-of-order core overlaps
        (memory-level parallelism, cf. the Cuckoo Trie); under this block
        ``key_loads`` charges at the ``key_load_batched`` rate.  Nests;
        depth bookkeeping is exception-safe and guarded against
        underflow.
        """
        self._mlp_depth += 1
        try:
            yield
        finally:
            self._mlp_depth -= 1
            assert self._mlp_depth >= 0, "mlp_batch depth underflow"

    @contextmanager
    def mlp_window(self, width: Optional[int] = None) -> Iterator[WaveStats]:
        """Open a prefetch-wave window: independent loads charged through
        :meth:`wave_loads` (and key loads already marked independent via
        :meth:`mlp_batch` / :meth:`key_loads_batched`) are grouped into
        waves of ``width`` outstanding misses and charged max-of-wave
        plus one ``wave_issue`` fee per wave.

        ``width`` defaults to :attr:`mlp_width`.  Width 1 (or a
        disabled model) yields an inert :class:`WaveStats` and changes
        nothing — serial pricing, byte-identical to a run without the
        window.  Nested windows join the outermost window's wave set
        (the hardware has one line-fill buffer pool; the inner call's
        requested width is ignored).  On exit — normal or by exception
        — partial waves are flushed deterministically (per category, in
        sorted order) and the window's tallies fold into
        :attr:`mlp_totals`.

        Windows must close inside any enclosing :meth:`measure` scope
        so the flush lands in the same delta as the loads it prices.
        """
        effective = self.mlp_width if width is None else width
        if not self.enabled or effective <= 1:
            yield WaveStats(width=max(1, effective))
            return
        window = self._wave
        if window is not None:
            window.depth += 1
            try:
                yield window.stats
            finally:
                window.depth -= 1
                assert window.depth >= 1, "mlp_window depth underflow"
            return
        window = _WaveWindow(effective)
        self._wave = window
        try:
            yield window.stats
        finally:
            window.depth -= 1
            assert window.depth == 0, "mlp_window depth underflow"
            self._wave = None
            self._flush_window(window)
            self.mlp_totals.fold(window.stats)

    def _flush_window(self, window: _WaveWindow) -> None:
        """Charge the window's partial waves (one event + one fee each)."""
        weights = self.weights._weight_map()
        fee = self.weights.wave_issue
        stats = window.stats
        for category in sorted(window.pending):
            if window.pending[category]:
                self.charge(category, 1)
                self.charge("wave_issue", 1)
                stats.waves += 1
                stats.wave_units += weights.get(category, 0.0) + fee
        window.pending.clear()

    @contextmanager
    def using_mlp_width(self, width: int) -> Iterator[None]:
        """Override :attr:`mlp_width` (the default window width) inside
        the block.  Restores the previous width on exit."""
        if width < 1:
            raise ValueError("mlp width must be positive")
        previous = self.mlp_width
        self.mlp_width = width
        try:
            yield
        finally:
            self.mlp_width = previous

    def mlp_summary(self) -> Dict[str, float]:
        """Cumulative prefetch-wave tallies (see :class:`WaveStats`)."""
        totals = self.mlp_totals
        return {
            "width": self.mlp_width,
            "loads": totals.loads,
            "waves": totals.waves,
            "overlapped": totals.overlapped,
            "serial_units": totals.serial_units,
            "wave_units": totals.wave_units,
            "saved_units": totals.saved_units,
        }

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def weighted_cost(self) -> float:
        """Total cost in DRAM-miss units under the configured weights."""
        weights = self.weights._weight_map()
        total = 0.0
        for category, count in self.counts.items():
            if category == "fixed_op_milli":
                total += weights["fixed_op"] * (count / 1000.0)
            else:
                total += weights.get(category, 0.0) * count
        return total

    def snapshot(self) -> Dict[str, int]:
        """Copy of the raw event counters."""
        return dict(self.counts)

    def reset(self) -> None:
        """Clear all counters (including cumulative wave tallies)."""
        self.counts.clear()
        self.tagged.clear()
        self.mlp_totals = WaveStats()

    @contextmanager
    def measure(self) -> Iterator["CostModel"]:
        """Context manager yielding a delta view: counters are snapshotted
        on entry, and on exit the yielded model holds only the delta."""
        before = self.snapshot()
        delta = CostModel(weights=self.weights)
        yield delta
        after = self.snapshot()
        for category in after:
            diff = after[category] - before.get(category, 0)
            if diff:
                delta.counts[category] = diff

    @contextmanager
    def attributed_to(self, tag: str) -> Iterator[None]:
        """Attribute charges inside the block to ``tag`` (in addition to
        the global counters).  The innermost attribution wins on nesting.
        Used for profiling breakdowns like section 6.1's "18.3% of
        execution is elasticity work"."""
        previous = self._attribution
        self._attribution = tag
        try:
            yield
        finally:
            self._attribution = previous

    def tagged_cost(self, tag: str) -> float:
        """Weighted cost of the events attributed to ``tag``."""
        weights = self.weights._weight_map()
        total = 0.0
        for category, count in self.tagged.get(tag, {}).items():
            if category == "fixed_op_milli":
                total += weights["fixed_op"] * (count / 1000.0)
            else:
                total += weights.get(category, 0.0) * count
        return total

    @contextmanager
    def paused(self) -> Iterator[None]:
        """Temporarily stop charging (used for test setup phases)."""
        previous = self.enabled
        self.enabled = False
        try:
            yield
        finally:
            self.enabled = previous


#: A shared disabled model for callers that do not care about costs.
NULL_COST_MODEL = CostModel(enabled=False)
