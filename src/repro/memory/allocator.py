"""Byte-exact space accounting with jemalloc-style size classes.

The paper reports index memory consumption as measured under jemalloc /
tcmalloc (section 6, "Setup"; section 6.4 notes the 64 MB chunk
granularity of jemalloc).  Because index size is a pure function of the
structure's layout, we account for it analytically: every node computes
its size from a C layout model (8-byte pointers, declared key/tuple-id
widths, headers, alignment) and registers it with a
:class:`TrackingAllocator`.

Size-class rounding matters for the breathing experiments (section 5.4):
growing a tuple-id array by ``s`` slots only consumes more memory when it
crosses a size class, which is why the paper observes breathing parameters
1, 2 and 4 "often coincide".  The rounding below follows jemalloc's small
size classes (4 classes per power-of-two group).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.memory.cost_model import CostModel, NULL_COST_MODEL


def jemalloc_size_class(nbytes: int) -> int:
    """Round an allocation request up to its jemalloc size class.

    Classes: 8, 16, 32, 48, 64, 80, 96, 112, 128, then four classes per
    power-of-two group (160, 192, 224, 256, 320, ...) as in jemalloc's
    small/large class layout.
    """
    if nbytes <= 0:
        return 0
    if nbytes <= 8:
        return 8
    if nbytes <= 128:
        return (nbytes + 15) & ~15
    # Group with 4 classes per doubling: step = 2^(k-2) where
    # 2^k < size <= 2^(k+1).
    k = (nbytes - 1).bit_length() - 1
    step = 1 << (k - 1)
    step //= 2  # 4 classes per group
    return ((nbytes + step - 1) // step) * step


@dataclass
class TrackingAllocator:
    """Tracks live bytes per category, optionally rounding to size classes.

    Every index node (and auxiliary array) in this library calls
    :meth:`allocate` on creation / growth and :meth:`free` on destruction /
    shrinkage, so ``total_bytes`` is always the exact simulated footprint.
    """

    use_size_classes: bool = True
    cost_model: CostModel = field(default_factory=lambda: NULL_COST_MODEL)
    live_bytes: Dict[str, int] = field(default_factory=dict)
    allocation_count: int = 0
    free_count: int = 0
    peak_bytes: int = 0

    def _rounded(self, nbytes: int) -> int:
        if self.use_size_classes:
            return jemalloc_size_class(nbytes)
        return nbytes

    def charged_size(self, nbytes: int) -> int:
        """The bytes :meth:`allocate` would charge for ``nbytes``,
        without allocating (capacity planning against a byte budget)."""
        return self._rounded(nbytes)

    def allocate(self, nbytes: int, category: str = "default") -> int:
        """Record an allocation; returns the rounded (charged) size."""
        if nbytes < 0:
            raise ValueError(f"cannot allocate {nbytes} bytes")
        charged = self._rounded(nbytes)
        self.live_bytes[category] = self.live_bytes.get(category, 0) + charged
        self.allocation_count += 1
        self.cost_model.allocs(1)
        total = self.total_bytes
        if total > self.peak_bytes:
            self.peak_bytes = total
        return charged

    def free(self, nbytes: int, category: str = "default") -> int:
        """Record a deallocation of a block originally of ``nbytes`` bytes."""
        if nbytes < 0:
            raise ValueError(f"cannot free {nbytes} bytes")
        charged = self._rounded(nbytes)
        current = self.live_bytes.get(category, 0)
        if charged > current:
            raise ValueError(
                f"freeing {charged} bytes from category {category!r} "
                f"which only holds {current}"
            )
        self.live_bytes[category] = current - charged
        self.free_count += 1
        self.cost_model.frees(1)
        return charged

    def resize(self, old_nbytes: int, new_nbytes: int, category: str = "default") -> None:
        """Record a realloc-style size change."""
        self.free(old_nbytes, category)
        self.allocate(new_nbytes, category)

    @property
    def total_bytes(self) -> int:
        """Total live bytes across all categories."""
        return sum(self.live_bytes.values())

    def bytes_in(self, category: str) -> int:
        """Live bytes charged to one category."""
        return self.live_bytes.get(category, 0)

    def breakdown(self) -> Dict[str, int]:
        """Copy of the per-category live byte counts (non-zero only)."""
        return {k: v for k, v in self.live_bytes.items() if v}

    def reset(self) -> None:
        """Clear all accounting (used between experiment phases)."""
        self.live_bytes.clear()
        self.allocation_count = 0
        self.free_count = 0
        self.peak_bytes = 0

    def assert_balanced(self, category: Optional[str] = None) -> None:
        """Raise ``AssertionError`` if live bytes remain (leak detector)."""
        if category is not None:
            live = self.live_bytes.get(category, 0)
            assert live == 0, f"{live} bytes leaked in category {category!r}"
        else:
            assert self.total_bytes == 0, (
                f"{self.total_bytes} bytes leaked: {self.breakdown()}"
            )
