"""Soft memory budget with hysteresis (paper section 4).

The elasticity algorithm "is configured with a soft size bound ... When
the index size grows close to the bound (e.g., reaches 90% of it), the
algorithm enters a shrinking state ... the algorithm switches from
shrinking to expansion only when the index size decreases far enough from
the size bound".  :class:`MemoryBudget` encodes exactly that state
machine; the elasticity controller consults it after every size change.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class PressureState(enum.Enum):
    """Elasticity state of the index (paper section 4)."""

    NORMAL = "normal"
    SHRINKING = "shrinking"
    EXPANDING = "expanding"


@dataclass
class MemoryBudget:
    """Tracks index size against a soft bound and drives state transitions.

    Attributes:
        soft_bound_bytes: The maximum size the index should be allowed to
            grow to.
        shrink_trigger_fraction: Entering SHRINKING when size reaches this
            fraction of the bound (paper's example: 0.9).
        expand_trigger_fraction: Leaving SHRINKING for EXPANDING when size
            drops below this fraction of the bound.  Must be strictly less
            than ``shrink_trigger_fraction`` to provide hysteresis and
            prevent oscillation.
    """

    soft_bound_bytes: int
    shrink_trigger_fraction: float = 0.9
    expand_trigger_fraction: float = 0.75
    state: PressureState = field(default=PressureState.NORMAL)
    transitions: int = 0

    def __post_init__(self) -> None:
        if self.soft_bound_bytes <= 0:
            raise ValueError("soft bound must be positive")
        if not 0 < self.expand_trigger_fraction < self.shrink_trigger_fraction <= 1:
            raise ValueError(
                "need 0 < expand_trigger < shrink_trigger <= 1 for hysteresis, "
                f"got expand={self.expand_trigger_fraction}, "
                f"shrink={self.shrink_trigger_fraction}"
            )

    @property
    def shrink_threshold_bytes(self) -> int:
        """Size at which the index enters the shrinking state."""
        return int(self.soft_bound_bytes * self.shrink_trigger_fraction)

    @property
    def expand_threshold_bytes(self) -> int:
        """Size below which a shrinking index switches to expansion."""
        return int(self.soft_bound_bytes * self.expand_trigger_fraction)

    def observe(self, current_bytes: int) -> PressureState:
        """Update the state machine with the current index size.

        Transitions (paper section 4):

        * NORMAL -> SHRINKING when size reaches the shrink threshold.
        * SHRINKING -> EXPANDING when size decreases "far enough from the
          size bound" (below the expand threshold).
        * EXPANDING -> SHRINKING if size climbs back to the shrink
          threshold.
        * EXPANDING -> NORMAL once the index has fully decompacted is the
          controller's decision (it knows the compact-leaf census), not
          the budget's; EXPANDING therefore persists here.
        """
        previous = self.state
        if self.state is PressureState.NORMAL:
            if current_bytes >= self.shrink_threshold_bytes:
                self.state = PressureState.SHRINKING
        elif self.state is PressureState.SHRINKING:
            if current_bytes < self.expand_threshold_bytes:
                self.state = PressureState.EXPANDING
        elif self.state is PressureState.EXPANDING:
            if current_bytes >= self.shrink_threshold_bytes:
                self.state = PressureState.SHRINKING
        if self.state is not previous:
            self.transitions += 1
        return self.state

    def set_soft_bound(
        self, new_bound_bytes: int, current_bytes: int | None = None
    ) -> PressureState:
        """Re-bound the budget in place, preserving hysteresis state.

        The pressure state is *kept* across the re-bound — a SHRINKING
        index stays SHRINKING even if the new, larger bound would not
        have triggered shrinking in the first place; it leaves the state
        only through the ordinary transition rules, evaluated against
        the new thresholds.  With ``current_bytes`` given, one
        :meth:`observe` runs immediately so the state reflects the new
        thresholds; without it, the caller is expected to observe at its
        next safe boundary.  The transition counter survives, so
        convergence tests can bound oscillation across re-bounds.
        """
        if new_bound_bytes <= 0:
            raise ValueError("soft bound must be positive")
        self.soft_bound_bytes = new_bound_bytes
        if current_bytes is not None:
            return self.observe(current_bytes)
        return self.state

    def settle(self) -> None:
        """Return to NORMAL (called by the controller when no compact
        leaves remain during expansion)."""
        if self.state is PressureState.EXPANDING:
            self.state = PressureState.NORMAL
            self.transitions += 1

    def headroom_bytes(self, current_bytes: int) -> int:
        """Bytes remaining before the shrink threshold is reached."""
        return self.shrink_threshold_bytes - current_bytes
