"""Memory substrate: byte-exact space accounting and a machine cost model.

The paper's evaluation machine (Broadwell Xeon, DDR4, jemalloc) cannot be
reproduced from CPython, so this package provides the two simulated
substrates that all experiments are built on:

* :class:`~repro.memory.allocator.TrackingAllocator` — byte-exact space
  accounting with optional jemalloc-style size-class rounding, used to
  regenerate every "index memory consumption" figure.
* :class:`~repro.memory.cost_model.CostModel` — a deterministic memory
  hierarchy cost model that charges every index operation for the cache
  line touches, indirect key loads, comparisons, allocations, and copies
  it performs.  Operation "throughput" in the benchmark harness is
  ``ops / weighted cost``, which preserves the relative shapes the paper
  reports (who wins, by what factor, and where curves cross).
* :class:`~repro.memory.budget.MemoryBudget` — the soft size bound with
  hysteresis that drives the elasticity algorithm (paper section 4).
"""

from repro.memory.allocator import TrackingAllocator, jemalloc_size_class
from repro.memory.cost_model import (
    CostModel,
    CostWeights,
    NULL_COST_MODEL,
    WaveStats,
)
from repro.memory.budget import MemoryBudget, PressureState

__all__ = [
    "TrackingAllocator",
    "jemalloc_size_class",
    "CostModel",
    "CostWeights",
    "NULL_COST_MODEL",
    "WaveStats",
    "MemoryBudget",
    "PressureState",
]
