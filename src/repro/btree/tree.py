"""B+-tree with pluggable leaves and overflow/underflow handler hooks."""

from __future__ import annotations

import bisect
from typing import Callable, Iterator, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.btree.leaves import (
    LeafFullError,
    LeafNode,
    StandardLeaf,
    TID_BYTES,
    next_node_id,
)
from repro.memory.allocator import TrackingAllocator
from repro.memory.cost_model import CostModel, NULL_COST_MODEL
from repro.obs import BatchDescentEvent, MlpWaveEvent

INNER_HEADER_BYTES = 24
POINTER_BYTES = 8

#: A descent path: (inner node, index of the child taken) per level.
Path = List[Tuple["InnerNode", int]]
Node = Union["InnerNode", LeafNode]


class InnerNode:
    """B+-tree inner node: sorted separator keys and child pointers.

    Inner nodes always store full keys — the elastic framework only
    compacts leaves, "which are where index searches terminate, because
    these nodes occupy most of the space in the index" (paper section 3).
    """

    def __init__(
        self,
        key_width: int,
        capacity: int,
        allocator: TrackingAllocator,
        cost_model: CostModel = NULL_COST_MODEL,
        keys: Optional[List[bytes]] = None,
        children: Optional[List[Node]] = None,
    ) -> None:
        if capacity < 4:
            raise ValueError(f"inner capacity {capacity} too small")
        self.key_width = key_width
        self.capacity = capacity
        self.allocator = allocator
        self.cost = cost_model
        self.keys: List[bytes] = keys if keys is not None else []
        self.children: List[Node] = children if children is not None else []
        self.node_id = next_node_id()
        self._alive = True
        self.allocator.allocate(self.size_bytes, "inner")

    @property
    def size_bytes(self) -> int:
        """Fixed-size node: header + key slots + child pointer slots."""
        return (
            INNER_HEADER_BYTES
            + self.capacity * self.key_width
            + (self.capacity + 1) * POINTER_BYTES
        )

    @property
    def min_children(self) -> int:
        """Underflow threshold for non-root inner nodes."""
        return (self.capacity + 1) // 2

    def route(self, key: bytes) -> int:
        """Index of the child subtree responsible for ``key``."""
        self.cost.rand_lines(1)
        n = len(self.keys)
        probes = max(1, n.bit_length())
        self.cost.compares(probes)
        self.cost.branches(probes)
        return bisect.bisect_right(self.keys, key)

    def insert_child(self, taken_idx: int, separator: bytes, right: Node) -> None:
        """Insert ``separator`` and ``right`` after the child at ``taken_idx``."""
        self.keys.insert(taken_idx, separator)
        self.children.insert(taken_idx + 1, right)
        moved = len(self.keys) - taken_idx
        self.cost.copy_bytes(moved * (self.key_width + POINTER_BYTES))

    def remove_child(self, child_idx: int) -> None:
        """Remove ``children[child_idx]`` and its left separator."""
        if child_idx == 0:
            raise ValueError("cannot remove leftmost child without a separator")
        del self.keys[child_idx - 1]
        del self.children[child_idx]
        moved = len(self.keys) - child_idx + 1
        self.cost.copy_bytes(max(0, moved) * (self.key_width + POINTER_BYTES))

    def replace_child(self, old: Node, new: Node) -> None:
        """Swap a child pointer in place (leaf conversion)."""
        idx = self.children.index(old)
        self.children[idx] = new
        self.cost.rand_lines(1)

    def destroy(self) -> None:
        if self._alive:
            self.allocator.free(self.size_bytes, "inner")
            self._alive = False

    def __repr__(self) -> str:
        return f"<InnerNode keys={len(self.keys)} children={len(self.children)}>"


#: Overflow handler: must complete the insertion of (key, tid) into the
#: subtree, typically by splitting or converting ``leaf``.
OverflowHandler = Callable[["BPlusTree", Path, LeafNode, bytes, int], None]

#: Underflow handler: invoked after a remove left ``leaf`` underfull.
UnderflowHandler = Callable[["BPlusTree", Path, LeafNode], None]


class BPlusTree:
    """STX-style B+-tree over fixed-width byte keys.

    The default handlers implement the textbook split/rebalance behaviour;
    the elastic B+-tree installs handlers that piggyback leaf conversion
    on these events (paper section 4).

    Args:
        key_width: Width of all keys, in bytes.
        leaf_capacity: Max keys per standard leaf (paper uses STX's 16).
        inner_capacity: Max separator keys per inner node.
        allocator: Space account; one is created if not given.  The tree's
            footprint is ``allocator`` categories other than ``"table"``.
        cost_model: Cost account shared with the backing table.
        leaf_factory: Creates an empty standard leaf; overridable so the
            all-compact baselines (SeqTree128 etc.) can reuse this tree.
    """

    def __init__(
        self,
        key_width: int,
        leaf_capacity: int = 16,
        inner_capacity: int = 16,
        allocator: Optional[TrackingAllocator] = None,
        cost_model: CostModel = NULL_COST_MODEL,
        leaf_factory: Optional[Callable[["BPlusTree"], LeafNode]] = None,
    ) -> None:
        self.key_width = key_width
        self.leaf_capacity = leaf_capacity
        self.inner_capacity = inner_capacity
        self.allocator = allocator if allocator is not None else TrackingAllocator()
        self.cost = cost_model
        self._leaf_factory = leaf_factory or (
            lambda tree: StandardLeaf(
                tree.key_width, tree.leaf_capacity, tree.allocator, tree.cost
            )
        )
        self.overflow_handler: OverflowHandler = BPlusTree.split_overflow_handler
        self.underflow_handler: UnderflowHandler = BPlusTree.rebalance_underflow_handler
        root = self._leaf_factory(self)
        self.root: Node = root
        self.first_leaf: LeafNode = root
        self.height = 1
        self._count = 0
        #: Split point for append-pattern splits of the rightmost leaf
        #: (sequential inserts reach ~70% occupancy, as real B+-trees
        #: with append optimization do).
        self.append_split_fraction = 0.7
        #: When set to a list, descents append visited node ids (used by
        #: the optimistic-lock-coupling simulator).
        self.trace: Optional[List[int]] = None
        #: Node ids structurally modified by the last insert/remove.
        self.last_write_set: List[int] = []
        #: Monotonic counter bumped by every structural change (leaf or
        #: inner split, merge, rebalance, conversion, bulk load).  The
        #: descent cache keys its validity on it, so a stale leaf can
        #: never serve a read.
        self.structural_epoch = 0
        #: Optional adaptive read cache (:class:`repro.cache.IndexCache`);
        #: ``None`` adds nothing but an untaken branch to any path.
        self.cache = None

    # ------------------------------------------------------------------
    # Descent
    # ------------------------------------------------------------------
    def descend(self, key: bytes) -> Tuple[Path, LeafNode]:
        """Walk root-to-leaf for ``key``, recording the path taken."""
        path: Path = []
        node = self.root
        while isinstance(node, InnerNode):
            if self.trace is not None:
                self.trace.append(node.node_id)
            idx = node.route(key)
            path.append((node, idx))
            node = node.children[idx]
        if self.trace is not None:
            self.trace.append(node.node_id)
        return path, node

    def _descend_bounded(
        self, key: bytes
    ) -> Tuple[Path, LeafNode, Optional[bytes]]:
        """Like :meth:`descend`, but also return the leaf's upper bound.

        The bound is the tightest separator above the taken path (or
        ``None`` for the rightmost leaf): every key < bound routes to the
        same leaf, which is what lets batched inserts reuse one descent
        for a run of consecutive keys.
        """
        path: Path = []
        hi: Optional[bytes] = None
        node = self.root
        while isinstance(node, InnerNode):
            if self.trace is not None:
                self.trace.append(node.node_id)
            idx = node.route(key)
            if idx < len(node.keys):
                # Separator ranges nest, so deeper bounds are tighter.
                hi = node.keys[idx]
            path.append((node, idx))
            node = node.children[idx]
        if self.trace is not None:
            self.trace.append(node.node_id)
        return path, node, hi

    def _descend_fenced(
        self, key: bytes
    ) -> Tuple[Path, LeafNode, Optional[bytes], Optional[bytes]]:
        """Like :meth:`descend`, but also return the leaf's fence keys.

        ``(lo, hi)`` bound the leaf's key interval (``None`` meaning
        unbounded): every key in ``[lo, hi)`` routes to this leaf, which
        is what the descent cache memoizes.
        """
        path: Path = []
        lo: Optional[bytes] = None
        hi: Optional[bytes] = None
        node = self.root
        while isinstance(node, InnerNode):
            if self.trace is not None:
                self.trace.append(node.node_id)
            idx = node.route(key)
            if idx > 0:
                lo = node.keys[idx - 1]
            if idx < len(node.keys):
                hi = node.keys[idx]
            path.append((node, idx))
            node = node.children[idx]
        if self.trace is not None:
            self.trace.append(node.node_id)
        return path, node, lo, hi

    # ------------------------------------------------------------------
    # Adaptive caching (repro.cache)
    # ------------------------------------------------------------------
    def attach_cache(self, cache) -> None:
        """Attach an adaptive read cache (:class:`repro.cache.IndexCache`).

        The cache charges its bytes to this tree's allocator under the
        ``"cache"`` category, so — since :attr:`index_bytes` sums every
        non-table category — it competes with the tree's own leaves for
        any elastic soft bound.
        """
        cache.bind(self.allocator, self.cost, self.key_width)
        self.cache = cache

    # ------------------------------------------------------------------
    # Batched descent (sorted-run descent sharing)
    # ------------------------------------------------------------------
    def _partition_descend(
        self, run: List[bytes]
    ) -> List[Tuple[LeafNode, int, int]]:
        """Route a sorted key run to leaves, descending once per subtree.

        Recursively partitions ``run`` at inner-node separators and
        returns ``(leaf, lo, hi)`` groups covering the run in order.
        Each inner node charges its ``rand_line`` and routing compare
        cost once per batch visit (plus one compare per extra child
        taken) instead of once per key — the descent-sharing economy of
        batched B+-tree execution.
        """
        groups: List[Tuple[LeafNode, int, int]] = []
        inner_visits = 0
        probe_events = 0
        stack: List[Tuple[Node, int, int]] = [(self.root, 0, len(run))]
        while stack:
            node, lo, hi = stack.pop()
            while isinstance(node, InnerNode):
                if self.trace is not None:
                    self.trace.append(node.node_id)
                inner_visits += 1
                seps = node.keys
                probe_events += max(1, len(seps).bit_length())
                first = bisect.bisect_right(seps, run[lo])
                last = bisect.bisect_right(seps, run[hi - 1])
                if first == last:
                    node = node.children[first]
                    continue
                # The run spans several children: split it at each
                # separator (keys == separator route right, as in route()).
                probe_events += last - first
                bounds = [lo]
                for ci in range(first, last):
                    bounds.append(
                        bisect.bisect_left(run, seps[ci], bounds[-1], hi)
                    )
                bounds.append(hi)
                children = node.children
                for offset in range(last - first, 0, -1):
                    blo = bounds[offset]
                    bhi = bounds[offset + 1]
                    if blo < bhi:
                        stack.append((children[first + offset], blo, bhi))
                hi = bounds[1]
                node = children[first]
                if lo >= hi:
                    break
            else:
                if self.trace is not None:
                    self.trace.append(node.node_id)
                groups.append((node, lo, hi))
        # Sibling-subtree descents are independent pointer chases: under
        # an open mlp_window they issue as prefetch waves; with no window
        # this is plain serial rand_line charging.
        self.cost.wave_loads("rand_line", inner_visits)
        self.cost.compares(probe_events)
        self.cost.branches(probe_events)
        groups.sort(key=lambda g: g[1])
        return groups

    @staticmethod
    def _sorted_run(keys: Sequence[bytes]) -> Tuple[List[int], List[bytes]]:
        """Sort a batch into a run; returns (input positions, sorted keys)."""
        order = sorted(range(len(keys)), key=keys.__getitem__)
        return order, [keys[i] for i in order]

    @staticmethod
    def _emit_batch_descent(op: str, batch_size: int, descents: int) -> None:
        """Publish one :class:`~repro.obs.BatchDescentEvent` if enabled."""
        if obs.is_enabled():
            obs.emit(BatchDescentEvent(
                op=op, batch_size=batch_size, descents=descents,
            ))

    @staticmethod
    def _emit_mlp_wave(op: str, wave) -> None:
        """Publish one :class:`~repro.obs.MlpWaveEvent` if the window
        actually wave-priced loads (width >= 2 and loads issued)."""
        if wave.loads and obs.is_enabled():
            obs.emit(MlpWaveEvent(
                op=op, width=wave.width, waves=wave.waves,
                loads=wave.loads, overlapped=wave.overlapped,
                saved_units=wave.saved_units,
            ))

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------
    def lookup(self, key: bytes) -> Optional[int]:
        """Point query: tuple id for ``key`` or ``None``."""
        cache = self.cache
        if cache is None:
            _, leaf = self.descend(key)
            return leaf.lookup(key)
        tid = cache.probe_row(key)
        if tid is not None:
            return tid
        epoch = self.structural_epoch
        leaf = cache.probe_leaf(key, epoch)
        if leaf is not None:
            tid = leaf.lookup(key)
        else:
            _, leaf, lo, hi = self._descend_fenced(key)
            tid = leaf.lookup(key)
            cache.admit_leaf(lo, hi, leaf, epoch)
        if tid is not None and leaf.indirect_keys:
            cache.admit_row(key, tid)
        return tid

    def lookup_batch(self, keys: Sequence[bytes]) -> List[Optional[int]]:
        """Point-query a batch of keys with one shared descent.

        Results align with the input order.  The batch is sorted into a
        run, the tree is descended once per distinct subtree, and each
        leaf answers its whole slice of the run in one visit (batched
        indirect key loads on compact leaves).
        """
        results: List[Optional[int]] = [None] * len(keys)
        if not keys:
            return results
        cache = self.cache
        if cache is not None:
            # Probe the whole batch first; only misses pay for descents.
            keys, positions = self._probe_batch(cache, keys, results)
            if not keys:
                return results
        order, run = self._sorted_run(keys)
        # The batch's subtree descents and leaf accesses are independent
        # loads: under a wave width >= 2 they issue as prefetch waves.
        with self.cost.mlp_window() as wave:
            groups = self._partition_descend(run)
            for leaf, lo, hi in groups:
                hits = leaf.lookup_batch(run[lo:hi])
                compact = cache is not None and leaf.indirect_keys
                for offset, tid in enumerate(hits):
                    position = order[lo + offset]
                    if cache is not None:
                        position = positions[position]
                    results[position] = tid
                    if compact and tid is not None:
                        cache.admit_row(run[lo + offset], tid)
        self._emit_batch_descent("lookup", len(keys), len(groups))
        self._emit_mlp_wave("lookup", wave)
        return results

    @staticmethod
    def _probe_batch(
        cache, keys: Sequence[bytes], results: List[Optional[int]]
    ) -> Tuple[List[bytes], List[int]]:
        """Resolve a batch's row-cache hits in place; return the misses.

        Fills ``results`` at hit positions and returns the missed keys
        with their input positions, ready for the shared descent.
        """
        miss_keys: List[bytes] = []
        positions: List[int] = []
        for position, key in enumerate(keys):
            tid = cache.probe_row(key)
            if tid is not None:
                results[position] = tid
            else:
                miss_keys.append(key)
                positions.append(position)
        return miss_keys, positions

    def insert(self, key: bytes, tid: int) -> Optional[int]:
        """Insert or replace; returns the replaced tuple id if any."""
        if len(key) != self.key_width:
            raise ValueError(f"key width {len(key)} != {self.key_width}")
        if self.cache is not None:
            self.cache.invalidate_row(key)
        self.last_write_set = []
        path, leaf = self.descend(key)
        try:
            old = leaf.upsert(key, tid)
        except LeafFullError:
            self.last_write_set.append(leaf.node_id)
            self.overflow_handler(self, path, leaf, key, tid)
            self._count += 1
            return None
        self.last_write_set.append(leaf.node_id)
        if old is None:
            self._count += 1
        return old

    def insert_sorted_batch(
        self, pairs: Sequence[Tuple[bytes, int]]
    ) -> List[Optional[int]]:
        """Insert a batch of (key, tid) pairs, sharing descents.

        Results (the replaced tuple id per pair, or ``None``) align with
        the input order; duplicate keys within the batch apply in input
        order, exactly as a scalar loop would.  The batch is sorted into
        a run and one descent serves every consecutive key routing to the
        same leaf; structural events (splits, elastic conversions) fall
        back to a fresh descent, so overflow/underflow handlers fire
        exactly as in scalar execution.
        """
        results: List[Optional[int]] = [None] * len(pairs)
        if not pairs:
            return results
        if self.cache is not None:
            for key, _ in pairs:
                self.cache.invalidate_row(key)
        order = sorted(range(len(pairs)), key=lambda i: pairs[i][0])
        self.last_write_set = []
        path: Path = []
        leaf: Optional[LeafNode] = None
        upper: Optional[bytes] = None
        descents = 0
        for i in order:
            key, tid = pairs[i]
            if len(key) != self.key_width:
                raise ValueError(f"key width {len(key)} != {self.key_width}")
            if leaf is None or (upper is not None and key >= upper):
                path, leaf, upper = self._descend_bounded(key)
                descents += 1
            try:
                old = leaf.upsert(key, tid)
            except LeafFullError:
                self.last_write_set.append(leaf.node_id)
                self.overflow_handler(self, path, leaf, key, tid)
                self._count += 1
                # The handler restructured the tree (split or elastic
                # conversion): the cached descent is no longer valid.
                leaf = None
                self._after_batch_structural_change()
                continue
            self.last_write_set.append(leaf.node_id)
            if old is None:
                self._count += 1
            else:
                results[i] = old
        self._emit_batch_descent("insert", len(pairs), descents)
        return results

    def _after_batch_structural_change(self) -> None:
        """Hook invoked after a structural event inside a batched insert.

        The elastic tree drains deferred policy actions here — the point
        where no cached descent state is live, so conversions and sweeps
        may restructure the tree safely mid-batch.
        """

    def remove(self, key: bytes) -> Optional[int]:
        """Remove ``key``; returns its tuple id or ``None`` if absent."""
        if self.cache is not None:
            self.cache.invalidate_row(key)
        self.last_write_set = []
        path, leaf = self.descend(key)
        tid = leaf.remove(key)
        if tid is None:
            return None
        self.last_write_set.append(leaf.node_id)
        self._count -= 1
        # A root leaf has no siblings to rebalance with, but a
        # *converted* (indirect-key) root leaf must still see underflow
        # events so the elasticity algorithm can step it back down the
        # ladder.
        if leaf.count < leaf.underflow_threshold and (
            path or leaf.indirect_keys
        ):
            self.underflow_handler(self, path, leaf)
        return tid

    # ------------------------------------------------------------------
    # Range operations
    # ------------------------------------------------------------------
    def scan(self, start_key: bytes, count: int) -> List[Tuple[bytes, int]]:
        """Collect up to ``count`` items with key >= ``start_key``."""
        _, leaf = self.descend(start_key)
        return self._collect_scan(leaf, start_key, count)

    def scan_batch(
        self, start_keys: Sequence[bytes], count: int
    ) -> List[List[Tuple[bytes, int]]]:
        """Run one ``count``-item scan per start key, sharing descents.

        Results align with the input order.  Only the root-to-leaf
        descents are shared; the leaf-chain walks are the same as
        :meth:`scan`'s.
        """
        results: List[List[Tuple[bytes, int]]] = [[] for _ in start_keys]
        if not start_keys:
            return results
        order, run = self._sorted_run(start_keys)
        # Shared descents plus per-scan iteration key loads wave-price
        # under the window; the leaf-chain pointer chases inside
        # _collect_scan are dependent and stay serially priced.
        with self.cost.mlp_window() as wave:
            groups = self._partition_descend(run)
            for leaf, lo, hi in groups:
                for offset in range(lo, hi):
                    results[order[offset]] = self._collect_scan(
                        leaf, run[offset], count
                    )
        self._emit_batch_descent("scan", len(start_keys), len(groups))
        self._emit_mlp_wave("scan", wave)
        return results

    def _collect_scan(
        self, leaf: LeafNode, start_key: bytes, count: int
    ) -> List[Tuple[bytes, int]]:
        out: List[Tuple[bytes, int]] = []
        iterator: Iterator[Tuple[bytes, int]] = leaf.iter_from(start_key)
        current: Optional[LeafNode] = leaf
        while current is not None and len(out) < count:
            for item in iterator:
                out.append(item)
                if len(out) >= count:
                    break
            else:
                current = current.next_leaf
                if current is not None:
                    self.cost.rand_lines(1)  # leaf-chain pointer chase
                    iterator = current.items()
                continue
            break
        return out

    def items(self) -> Iterator[Tuple[bytes, int]]:
        """All items in key order."""
        leaf: Optional[LeafNode] = self.first_leaf
        while leaf is not None:
            for item in leaf.items():
                yield item
            leaf = leaf.next_leaf

    def iter_from(self, start_key: bytes) -> Iterator[Tuple[bytes, int]]:
        """Lazily yield items with key >= ``start_key`` in order.

        Unlike :meth:`scan`, no result list is materialized; the tree
        must not be mutated while iterating.
        """
        _, leaf = self.descend(start_key)
        iterator: Iterator[Tuple[bytes, int]] = leaf.iter_from(start_key)
        current: Optional[LeafNode] = leaf
        while current is not None:
            for item in iterator:
                yield item
            current = current.next_leaf
            if current is not None:
                self.cost.rand_lines(1)
                iterator = current.items()

    def __len__(self) -> int:
        return self._count

    @property
    def index_bytes(self) -> int:
        """Total simulated footprint of the index structure."""
        return sum(
            size
            for category, size in self.allocator.live_bytes.items()
            if category != "table"
        )

    # ------------------------------------------------------------------
    # Default overflow handling: split
    # ------------------------------------------------------------------
    @staticmethod
    def split_overflow_handler(
        tree: "BPlusTree", path: Path, leaf: LeafNode, key: bytes, tid: int
    ) -> None:
        """Textbook behaviour: split the leaf and retry the insert."""
        tree.split_leaf_and_insert(path, leaf, key, tid)

    def split_leaf_and_insert(
        self, path: Path, leaf: LeafNode, key: bytes, tid: int
    ) -> None:
        """Split ``leaf``, thread the new sibling, and place (key, tid)."""
        fraction = 0.5
        if leaf.next_leaf is None and leaf.count and self._is_append(leaf, key):
            fraction = self.append_split_fraction
        right, separator = leaf.split(fraction)
        right.link_after(leaf)
        self.last_write_set.append(right.node_id)
        self.insert_separator(path, separator, right)
        target = right if key >= separator else leaf
        target.upsert(key, tid)

    def _is_append(self, leaf: LeafNode, key: bytes) -> bool:
        """Whether ``key`` lands past the rightmost leaf's maximum —
        standard leaves check in place; indirect-key leaves (compact,
        learned) load their last key from the table (one charged access,
        on the rare split path)."""
        if isinstance(leaf, StandardLeaf):
            return bool(leaf.keys) and key > leaf.keys[-1]
        rep = getattr(leaf, "rep", None)
        if rep is not None:
            return key > rep.key_at(rep.n - 1)
        last_key = getattr(leaf, "last_key", None)
        if last_key is not None and leaf.count:
            return key > last_key()
        return False

    def insert_separator(self, path: Path, separator: bytes, right: Node) -> None:
        """Insert a separator/child produced by a split, cascading up."""
        self.structural_epoch += 1
        if not path:
            new_root = InnerNode(
                self.key_width,
                self.inner_capacity,
                self.allocator,
                self.cost,
                keys=[separator],
                children=[self.root, right],
            )
            self.root = new_root
            self.height += 1
            self.last_write_set.append(new_root.node_id)
            return
        parent, taken_idx = path[-1]
        parent.insert_child(taken_idx, separator, right)
        self.last_write_set.append(parent.node_id)
        if len(parent.keys) > parent.capacity:
            self._split_inner(path)

    def _split_inner(self, path: Path) -> None:
        node, _ = path[-1]
        mid = len(node.keys) // 2
        push_key = node.keys[mid]
        right = InnerNode(
            self.key_width,
            self.inner_capacity,
            self.allocator,
            self.cost,
            keys=node.keys[mid + 1 :],
            children=node.children[mid + 1 :],
        )
        self.cost.copy_bytes(
            len(right.keys) * (self.key_width + POINTER_BYTES) + POINTER_BYTES
        )
        del node.keys[mid:]
        del node.children[mid + 1 :]
        self.last_write_set.append(right.node_id)
        self.insert_separator(path[:-1], push_key, right)

    # ------------------------------------------------------------------
    # Default underflow handling: borrow or merge
    # ------------------------------------------------------------------
    @staticmethod
    def rebalance_underflow_handler(
        tree: "BPlusTree", path: Path, leaf: LeafNode
    ) -> None:
        """Textbook behaviour: borrow from a sibling, else merge."""
        tree.rebalance_leaf(path, leaf)

    def rebalance_leaf(self, path: Path, leaf: LeafNode) -> None:
        """Restore the fill invariant of ``leaf`` after a remove."""
        if not path:
            return  # root leaf: nothing to rebalance with
        # Borrows move keys across fences, merges drop leaves: either
        # way cached descents are stale.
        self.structural_epoch += 1
        parent, idx = path[-1]
        if leaf.count == 0:
            # Empty leaves are removable even when every sibling is too
            # large to merge with (mixed-capacity elastic trees).
            successor = leaf.next_leaf
            leaf.unlink()
            leaf.destroy()
            if self.first_leaf is leaf:
                self.first_leaf = successor
            if idx > 0:
                parent.remove_child(idx)
            else:
                del parent.children[0]
                del parent.keys[0]
            self.last_write_set.append(parent.node_id)
            self._after_child_removed(path)
            return
        left = parent.children[idx - 1] if idx > 0 else None
        right = (
            parent.children[idx + 1] if idx + 1 < len(parent.children) else None
        )
        # Borrow first: cheaper than merging and never cascades.
        if left is not None and left.count > left.min_fill:
            key, tid = left.take_last()
            leaf.upsert(key, tid)
            parent.keys[idx - 1] = key
            self.last_write_set += [left.node_id, parent.node_id]
            return
        if right is not None and right.count > right.min_fill:
            key, tid = right.take_first()
            leaf.upsert(key, tid)
            parent.keys[idx] = right.first_key()
            self.last_write_set += [right.node_id, parent.node_id]
            return
        # Merge: into the left sibling when possible, else absorb the right.
        if left is not None and left.count + leaf.count <= left.capacity:
            left.merge_from(leaf)
            leaf.unlink()
            leaf.destroy()
            parent.remove_child(idx)
            self.last_write_set += [left.node_id, parent.node_id]
            self._after_child_removed(path)
            return
        if right is not None and leaf.count + right.count <= leaf.capacity:
            leaf.merge_from(right)
            right.unlink()
            right.destroy()
            parent.remove_child(idx + 1)
            self.last_write_set += [leaf.node_id, parent.node_id]
            self._after_child_removed(path)
            return
        # No sibling can help (possible with mixed-capacity leaves);
        # tolerate the underfull leaf — correctness is unaffected.

    def _after_child_removed(self, path: Path) -> None:
        """Cascade inner-node rebalancing after a child was removed."""
        parent, _ = path[-1]
        if parent is self.root:
            if len(parent.children) == 1:
                self.root = parent.children[0]
                parent.destroy()
                self.height -= 1
            return
        if len(parent.children) >= parent.min_children:
            return
        grand, pidx = path[-2]
        left = grand.children[pidx - 1] if pidx > 0 else None
        right = (
            grand.children[pidx + 1] if pidx + 1 < len(grand.children) else None
        )
        if isinstance(left, InnerNode) and len(left.children) > left.min_children:
            parent.keys.insert(0, grand.keys[pidx - 1])
            parent.children.insert(0, left.children.pop())
            grand.keys[pidx - 1] = left.keys.pop()
            self.cost.copy_bytes(
                len(parent.keys) * (self.key_width + POINTER_BYTES)
            )
            return
        if isinstance(right, InnerNode) and len(right.children) > right.min_children:
            parent.keys.append(grand.keys[pidx])
            parent.children.append(right.children.pop(0))
            grand.keys[pidx] = right.keys.pop(0)
            self.cost.copy_bytes(
                len(right.keys) * (self.key_width + POINTER_BYTES)
            )
            return
        if (
            isinstance(left, InnerNode)
            and len(left.keys) + 1 + len(parent.keys) <= left.capacity
        ):
            left.keys.append(grand.keys[pidx - 1])
            left.keys.extend(parent.keys)
            left.children.extend(parent.children)
            self.cost.copy_bytes(
                len(parent.keys) * (self.key_width + POINTER_BYTES)
            )
            parent.destroy()
            grand.remove_child(pidx)
            self._after_child_removed(path[:-1])
            return
        if (
            isinstance(right, InnerNode)
            and len(parent.keys) + 1 + len(right.keys) <= parent.capacity
        ):
            parent.keys.append(grand.keys[pidx])
            parent.keys.extend(right.keys)
            parent.children.extend(right.children)
            self.cost.copy_bytes(
                len(right.keys) * (self.key_width + POINTER_BYTES)
            )
            right.destroy()
            grand.remove_child(pidx + 1)
            self._after_child_removed(path[:-1])

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------
    def bulk_load(
        self, items: List[Tuple[bytes, int]], leaf_fill: float = 0.9
    ) -> None:
        """Build the tree bottom-up from sorted unique (key, tid) pairs.

        Far cheaper than item-at-a-time insertion and produces leaves at
        ``leaf_fill`` occupancy.  Requires an empty tree.
        """
        if self._count:
            raise ValueError("bulk_load requires an empty tree")
        if not 0.1 <= leaf_fill <= 1.0:
            raise ValueError("leaf_fill must be in [0.1, 1.0]")
        if not items:
            return
        for (a, _), (b, _) in zip(items, items[1:]):
            if a >= b:
                raise ValueError("bulk_load items must be sorted and unique")
        old_root = self.root
        chunk = max(2, int(self.leaf_capacity * leaf_fill))
        leaves: List[LeafNode] = [
            self.make_standard_leaf(items[i : i + chunk])
            for i in range(0, len(items), chunk)
        ]
        self.cost.copy_bytes(len(items) * (self.key_width + TID_BYTES))
        for left, right in zip(leaves, leaves[1:]):
            right.link_after(left)
        self.first_leaf = leaves[0]
        nodes: List[Node] = list(leaves)
        separators = [leaf.first_key() for leaf in leaves[1:]]
        self.height = 1
        while len(nodes) > 1:
            group = max(2, int((self.inner_capacity + 1) * leaf_fill))
            new_nodes: List[Node] = []
            new_separators: List[bytes] = []
            min_children = (self.inner_capacity + 1) // 2
            i = 0
            while i < len(nodes):
                children = nodes[i : i + group]
                child_seps = separators[i : i + len(children) - 1]
                if len(children) < min_children and new_nodes:
                    # A short trailing group: fold into the previous node
                    # if it fits, otherwise rebalance the last two groups
                    # so both respect the fill invariant.
                    prev = new_nodes.pop()
                    assert isinstance(prev, InnerNode)
                    all_children = prev.children + children
                    all_seps = prev.keys + [separators[i - 1]] + child_seps
                    prev.destroy()
                    if len(all_children) <= self.inner_capacity + 1:
                        groups = [(all_seps, all_children)]
                    else:
                        left_n = len(all_children) // 2
                        groups = [
                            (all_seps[: left_n - 1], all_children[:left_n]),
                            (all_seps[left_n:], all_children[left_n:]),
                        ]
                        new_separators.append(all_seps[left_n - 1])
                    for keys, group_children in groups:
                        new_nodes.append(
                            InnerNode(
                                self.key_width,
                                self.inner_capacity,
                                self.allocator,
                                self.cost,
                                keys=list(keys),
                                children=list(group_children),
                            )
                        )
                else:
                    inner = InnerNode(
                        self.key_width,
                        self.inner_capacity,
                        self.allocator,
                        self.cost,
                        keys=child_seps,
                        children=children,
                    )
                    if i > 0:
                        new_separators.append(separators[i - 1])
                    new_nodes.append(inner)
                i += group
            nodes = new_nodes
            separators = new_separators
            self.height += 1
        self.root = nodes[0]
        self._count = len(items)
        old_root.destroy()
        self.structural_epoch += 1
        if self.cache is not None:
            self.cache.clear()

    # ------------------------------------------------------------------
    # Elastic-host surface (see repro.core.framework.ElasticHost)
    # ------------------------------------------------------------------
    def make_standard_leaf(self, items: List[Tuple[bytes, int]]) -> LeafNode:
        """Build this host's standard (internal-key) leaf from items.

        The elasticity controller uses this to revert compact leaves;
        subclasses with different standard leaves (e.g. the Bw-tree's
        delta leaves) override it.
        """
        return StandardLeaf(
            self.key_width, self.leaf_capacity, self.allocator, self.cost,
            items=items,
        )

    def iter_leaves_with_paths(self):
        """Yield (path, leaf) for every leaf (bulk compaction walks)."""

        def walk(node: Node, path: Path):
            if isinstance(node, InnerNode):
                for idx in range(len(node.children)):
                    yield from walk(node.children[idx], path + [(node, idx)])
            else:
                yield path, node

        yield from walk(self.root, [])

    def replace_leaf(self, path: Path, old: LeafNode, new: LeafNode) -> None:
        """Swap ``old`` for ``new`` in the parent and the leaf chain."""
        self.structural_epoch += 1
        new.replace_in_chain(old)
        if path:
            parent, _ = path[-1]
            parent.replace_child(old, new)
        else:
            self.root = new
        if self.first_leaf is old:
            self.first_leaf = new
        self.last_write_set += [old.node_id, new.node_id]
        old.destroy()

    # ------------------------------------------------------------------
    # Invariant checking (tests call this after random workloads)
    # ------------------------------------------------------------------
    def check_invariants(self, strict_fill: bool = True) -> None:
        """Verify structural invariants; raises ``AssertionError``."""
        leaves_in_tree: List[LeafNode] = []

        def walk(node: Node, lo: Optional[bytes], hi: Optional[bytes]) -> int:
            if isinstance(node, InnerNode):
                assert node.keys == sorted(node.keys), "inner keys unsorted"
                assert len(node.children) == len(node.keys) + 1
                assert len(node.keys) <= node.capacity
                if node is not self.root:
                    assert len(node.children) >= node.min_children, (
                        f"inner underfull: {len(node.children)}"
                    )
                else:
                    assert len(node.children) >= 2
                depths = set()
                for i, child in enumerate(node.children):
                    child_lo = node.keys[i - 1] if i > 0 else lo
                    child_hi = node.keys[i] if i < len(node.keys) else hi
                    depths.add(walk(child, child_lo, child_hi))
                assert len(depths) == 1, "leaves at differing depths"
                return 1 + depths.pop()
            leaves_in_tree.append(node)
            keys = [k for k, _ in _uncharged_items(node)]
            assert keys == sorted(keys), "leaf keys unsorted"
            assert len(set(keys)) == len(keys), "duplicate keys in leaf"
            assert node.count <= node.capacity
            # The rightmost leaf is exempt: append-optimized splits leave
            # it shallow by design.
            if strict_fill and node is not self.root and node.next_leaf is not None:
                assert node.count >= node.min_fill, (
                    f"leaf underfull: {node.count} < {node.min_fill}"
                )
            for key in keys:
                if lo is not None:
                    assert key >= lo, "leaf key below separator"
                if hi is not None:
                    assert key < hi, "leaf key not below separator"
            return 1

        with self.cost.paused():
            depth = walk(self.root, None, None)
            assert depth == self.height, f"height {self.height} != depth {depth}"
            # Leaf chain must visit exactly the tree's leaves, in order.
            chain: List[LeafNode] = []
            leaf: Optional[LeafNode] = self.first_leaf
            while leaf is not None:
                chain.append(leaf)
                leaf = leaf.next_leaf
            assert chain == leaves_in_tree, "leaf chain disagrees with tree"
            total = sum(leaf.count for leaf in chain)
            assert total == self._count, f"count {self._count} != {total}"


def _uncharged_items(leaf: LeafNode) -> List[Tuple[bytes, int]]:
    """Leaf contents without cost charging (invariant checking only)."""
    return list(leaf.items())
