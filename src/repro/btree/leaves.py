"""Leaf ADT and the standard (internal-key-storage) leaf.

The paper (section 3) observes that B+-tree leaves are "mini indexes"
with a six-operation ADT: insert, remove, find, predecessor/successor,
split, and merge.  :class:`LeafNode` is that ADT, extended with the
space/cost reporting this reproduction needs.  :class:`StandardLeaf` is
the STX-style sorted-array leaf; the compact blind-trie leaves in
:mod:`repro.blindi` implement the same ADT with indirect key storage.
"""

from __future__ import annotations

import abc
import bisect
from typing import Iterator, List, Optional, Tuple

from repro.memory.allocator import TrackingAllocator
from repro.memory.cost_model import CostModel, NULL_COST_MODEL

#: Layout constants (bytes) modelling the STX B+-tree node headers:
#: level/slot bookkeeping plus the doubly-linked leaf chain pointers.
LEAF_HEADER_BYTES = 32
TID_BYTES = 8

_CACHE_LINE = 64

_node_id_counter = 0


def next_node_id() -> int:
    """Monotonic node id, used by the concurrency simulator."""
    global _node_id_counter
    _node_id_counter += 1
    return _node_id_counter


class LeafFullError(Exception):
    """Raised by ``upsert`` when a new key does not fit: an overflow event.

    The tree catches this and routes it through the overflow handler,
    which is where the elasticity algorithm piggybacks conversion
    (paper section 4, "Shrinking").
    """


class LeafNode(abc.ABC):
    """Abstract leaf ADT shared by standard and compact representations."""

    #: Canonical leaf-kind discriminator.  Every concrete representation
    #: declares its registered kind name (see :mod:`repro.btree.kinds`);
    #: conversion machinery, stats, caching, and tooling dispatch on this
    #: string instead of probing representation-specific booleans.
    kind: str = "standard"

    #: True when keys live behind tuple ids in the table (blind tries,
    #: learned leaves) rather than inline — the representations whose
    #: verify loads the adaptive row cache can short-circuit.
    indirect_keys: bool = False

    #: Query-access counter maintained by elastic hosts, consumed by
    #: access-aware grow/shrink policies (section 4's future-work policy,
    #: implemented as :class:`repro.core.policies.ColdFirstPolicy`).
    #: Class default 0; incrementing creates the instance attribute.
    access_count: int = 0

    next_leaf: Optional["LeafNode"]
    prev_leaf: Optional["LeafNode"]
    node_id: int

    @property
    def is_compact(self) -> bool:
        """Derived compatibility probe: ``kind == "compact"``.

        :attr:`kind` is the canonical discriminator; this property is
        kept for external callers and tests that still speak the paper's
        two-point full/compact vocabulary.
        """
        return self.kind == "compact"

    # -- capacity -------------------------------------------------------
    @property
    @abc.abstractmethod
    def count(self) -> int:
        """Number of keys currently stored."""

    @property
    @abc.abstractmethod
    def capacity(self) -> int:
        """Maximum number of keys this leaf may hold."""

    @property
    def is_full(self) -> bool:
        """Whether an insert of a new key would overflow."""
        return self.count >= self.capacity

    @property
    def min_fill(self) -> int:
        """Structural fill bound used by rebalancing: half capacity."""
        return self.capacity // 2

    @property
    def underflow_threshold(self) -> int:
        """Occupancy below which the tree raises an underflow event.

        Defaults to the structural bound.  The elasticity algorithm
        raises it on compact leaves to the paper's invariant — a compact
        leaf of capacity 2k must hold at least k+1 keys (section 4) — so
        that underflowing compact leaves are converted down the capacity
        ladder instead of being rebalanced.
        """
        return self.min_fill

    # -- point operations ------------------------------------------------
    @abc.abstractmethod
    def lookup(self, key: bytes) -> Optional[int]:
        """Return the tuple id mapped to ``key``, or ``None``."""

    def lookup_batch(self, keys: List[bytes]) -> List[Optional[int]]:
        """Look up a sorted run of keys that all route to this leaf.

        The default is the scalar loop; representations override it to
        share per-node access costs across the run and to issue indirect
        key loads as independent (batched) accesses.
        """
        return [self.lookup(key) for key in keys]

    @abc.abstractmethod
    def upsert(self, key: bytes, tid: int) -> Optional[int]:
        """Insert or replace ``key``; returns the replaced tuple id.

        Raises:
            LeafFullError: if the key is absent and the leaf is full.
        """

    @abc.abstractmethod
    def remove(self, key: bytes) -> Optional[int]:
        """Remove ``key``; returns its tuple id, or ``None`` if absent."""

    # -- ordered access ---------------------------------------------------
    @abc.abstractmethod
    def first_key(self) -> bytes:
        """Smallest key in the leaf (used as parent separator)."""

    @abc.abstractmethod
    def items(self) -> Iterator[Tuple[bytes, int]]:
        """All (key, tid) pairs in key order (charges per-key loads on
        compact leaves — the scan cost the paper studies)."""

    @abc.abstractmethod
    def iter_from(self, key: bytes) -> Iterator[Tuple[bytes, int]]:
        """(key, tid) pairs for keys >= ``key``, in order."""

    @abc.abstractmethod
    def take_first(self) -> Tuple[bytes, int]:
        """Remove and return the smallest item (sibling borrow)."""

    @abc.abstractmethod
    def take_last(self) -> Tuple[bytes, int]:
        """Remove and return the largest item (sibling borrow)."""

    # -- structural operations ---------------------------------------------
    @abc.abstractmethod
    def split(self, fraction: float = 0.5) -> Tuple["LeafNode", bytes]:
        """Split at ``fraction`` of the keys into a new right sibling.

        Returns the new leaf and the separator key (its first key).
        Leaf-chain pointers are fixed up by the tree, not here.  The
        tree passes a larger fraction for append-pattern splits of the
        rightmost leaf (sequential inserts then reach ~70% occupancy
        instead of 50%).
        """

    @abc.abstractmethod
    def merge_from(self, right: "LeafNode") -> None:
        """Absorb all items of ``right`` (which follows this leaf)."""

    @abc.abstractmethod
    def keys_and_tids(self) -> Tuple[List[bytes], List[int]]:
        """Materialize contents for representation conversion (charges
        per-key loads on compact leaves)."""

    # -- accounting ---------------------------------------------------------
    @property
    @abc.abstractmethod
    def size_bytes(self) -> int:
        """Currently allocated bytes (as charged to the allocator)."""

    @abc.abstractmethod
    def destroy(self) -> None:
        """Release this leaf's allocation."""

    # -- shared chain helpers -------------------------------------------------
    def link_after(self, left: Optional["LeafNode"]) -> None:
        """Insert this leaf into the chain immediately after ``left``."""
        self.prev_leaf = left
        if left is not None:
            self.next_leaf = left.next_leaf
            if left.next_leaf is not None:
                left.next_leaf.prev_leaf = self
            left.next_leaf = self
        else:
            self.next_leaf = None

    def unlink(self) -> None:
        """Remove this leaf from the chain."""
        if self.prev_leaf is not None:
            self.prev_leaf.next_leaf = self.next_leaf
        if self.next_leaf is not None:
            self.next_leaf.prev_leaf = self.prev_leaf
        self.prev_leaf = None
        self.next_leaf = None

    def replace_in_chain(self, old: "LeafNode") -> None:
        """Take ``old``'s position in the leaf chain (leaf conversion)."""
        self.prev_leaf = old.prev_leaf
        self.next_leaf = old.next_leaf
        if old.prev_leaf is not None:
            old.prev_leaf.next_leaf = self
        if old.next_leaf is not None:
            old.next_leaf.prev_leaf = self
        old.prev_leaf = None
        old.next_leaf = None


class StandardLeaf(LeafNode):
    """STX-style leaf: sorted key array with internal key storage.

    Space model: header + ``capacity`` key slots + ``capacity`` tuple-id
    slots, allocated up front (STX nodes are fixed-size).  This is the
    "internal-key storage" whose memory overhead the paper targets —
    and whose cache-resident keys make scans fast.
    """

    kind = "standard"

    def __init__(
        self,
        key_width: int,
        capacity: int,
        allocator: TrackingAllocator,
        cost_model: CostModel = NULL_COST_MODEL,
        items: Optional[List[Tuple[bytes, int]]] = None,
    ) -> None:
        if capacity < 4:
            raise ValueError(f"leaf capacity {capacity} too small")
        self.key_width = key_width
        self._capacity = capacity
        self.allocator = allocator
        self.cost = cost_model
        self.keys: List[bytes] = []
        self.tids: List[int] = []
        if items:
            if len(items) > capacity:
                raise ValueError("initial items exceed capacity")
            self.keys = [k for k, _ in items]
            self.tids = [t for _, t in items]
        self.next_leaf: Optional[LeafNode] = None
        self.prev_leaf: Optional[LeafNode] = None
        self.node_id = next_node_id()
        self._alive = True
        self.allocator.allocate(self.size_bytes, "leaf.standard")

    # -- capacity ---------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self.keys)

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def size_bytes(self) -> int:
        return LEAF_HEADER_BYTES + self._capacity * (self.key_width + TID_BYTES)

    # -- internal search ---------------------------------------------------
    def _search_cost(self) -> None:
        n = len(self.keys)
        self.cost.rand_lines(1)
        if n:
            probes = max(1, n.bit_length())
            self.cost.compares(probes)
            self.cost.branches(probes)
            # Binary search touches up to log2(lines) distinct lines of the
            # key area; charge one extra random line for keys beyond one
            # cache line, which matches a 16-slot STX leaf closely.
            if n * self.key_width > _CACHE_LINE:
                self.cost.rand_lines(1)

    def _position(self, key: bytes) -> int:
        self._search_cost()
        return bisect.bisect_left(self.keys, key)

    # -- point operations ----------------------------------------------------
    def lookup(self, key: bytes) -> Optional[int]:
        pos = self._position(key)
        if pos < len(self.keys) and self.keys[pos] == key:
            self.cost.seq_lines(1)  # tid slot access
            return self.tids[pos]
        return None

    def lookup_batch(self, keys: List[bytes]) -> List[Optional[int]]:
        # The node's lines stay cache-resident across the run, so the
        # random touches are charged once per batch visit; the per-key
        # binary searches still pay their ALU work.
        leaf_keys = self.keys
        n = len(leaf_keys)
        cost = self.cost
        # Leaf accesses across a batch's groups are independent loads:
        # wave-priced under an open mlp_window, serial otherwise.
        cost.wave_loads("rand_line", 1)
        if n and n * self.key_width > _CACHE_LINE:
            cost.wave_loads("rand_line", 1)
        probes = max(1, n.bit_length()) if n else 1
        cost.compares(probes * len(keys))
        cost.branches(probes * len(keys))
        out: List[Optional[int]] = []
        hits = 0
        tids = self.tids
        for key in keys:
            pos = bisect.bisect_left(leaf_keys, key)
            if pos < n and leaf_keys[pos] == key:
                hits += 1
                out.append(tids[pos])
            else:
                out.append(None)
        if hits:
            cost.seq_lines(hits)  # tid slot accesses
        return out

    def upsert(self, key: bytes, tid: int) -> Optional[int]:
        pos = self._position(key)
        if pos < len(self.keys) and self.keys[pos] == key:
            old = self.tids[pos]
            self.tids[pos] = tid
            self.cost.seq_lines(1)
            return old
        if self.is_full:
            raise LeafFullError()
        self.keys.insert(pos, key)
        self.tids.insert(pos, tid)
        moved = len(self.keys) - pos - 1
        self.cost.copy_bytes(moved * (self.key_width + TID_BYTES))
        return None

    def remove(self, key: bytes) -> Optional[int]:
        pos = self._position(key)
        if pos >= len(self.keys) or self.keys[pos] != key:
            return None
        tid = self.tids[pos]
        del self.keys[pos]
        del self.tids[pos]
        moved = len(self.keys) - pos
        self.cost.copy_bytes(moved * (self.key_width + TID_BYTES))
        return tid

    # -- ordered access ---------------------------------------------------------
    def first_key(self) -> bytes:
        return self.keys[0]

    def items(self) -> Iterator[Tuple[bytes, int]]:
        # Scans stream the key and tid arrays sequentially: this is the
        # cache-efficiency the paper credits internal key storage with.
        self.cost.touch_bytes_seq(len(self.keys) * (self.key_width + TID_BYTES))
        return iter(list(zip(self.keys, self.tids)))

    def iter_from(self, key: bytes) -> Iterator[Tuple[bytes, int]]:
        pos = self._position(key)
        n = len(self.keys) - pos
        if n > 0:
            self.cost.touch_bytes_seq(n * (self.key_width + TID_BYTES))
        return iter(list(zip(self.keys[pos:], self.tids[pos:])))

    def take_first(self) -> Tuple[bytes, int]:
        key, tid = self.keys.pop(0), self.tids.pop(0)
        self.cost.copy_bytes(len(self.keys) * (self.key_width + TID_BYTES))
        return key, tid

    def take_last(self) -> Tuple[bytes, int]:
        self.cost.rand_lines(1)
        return self.keys.pop(), self.tids.pop()

    # -- structural operations ------------------------------------------------
    def split(self, fraction: float = 0.5) -> Tuple["StandardLeaf", bytes]:
        mid = max(1, min(len(self.keys) - 1, int(len(self.keys) * fraction)))
        right_items = list(zip(self.keys[mid:], self.tids[mid:]))
        right = StandardLeaf(
            self.key_width,
            self._capacity,
            self.allocator,
            self.cost,
            items=right_items,
        )
        self.cost.copy_bytes(len(right_items) * (self.key_width + TID_BYTES))
        del self.keys[mid:]
        del self.tids[mid:]
        return right, right.keys[0]

    def merge_from(self, right: LeafNode) -> None:
        keys, tids = right.keys_and_tids()
        if self.count + len(keys) > self._capacity:
            raise ValueError("merge would overflow leaf")
        self.keys.extend(keys)
        self.tids.extend(tids)
        self.cost.copy_bytes(len(keys) * (self.key_width + TID_BYTES))

    def keys_and_tids(self) -> Tuple[List[bytes], List[int]]:
        self.cost.touch_bytes_seq(len(self.keys) * (self.key_width + TID_BYTES))
        return list(self.keys), list(self.tids)

    # -- accounting -----------------------------------------------------------
    def destroy(self) -> None:
        if self._alive:
            self.allocator.free(self.size_bytes, "leaf.standard")
            self._alive = False

    def __repr__(self) -> str:
        return f"<StandardLeaf n={self.count}/{self._capacity}>"
