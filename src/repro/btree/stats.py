"""Structural statistics for B+-trees (leaf census, occupancy, space).

The paper reports several structural facts that these stats regenerate:
the fraction of compact leaves per capacity class (section 6.4: "at 4X
items 10% of the leaves in the elastic index are SeqTree nodes with
capacity of 128, and that number reaches 37% at 5X items") and the ~70%
average leaf occupancy under uniform keys (section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, TYPE_CHECKING

if TYPE_CHECKING:
    from repro.btree.tree import BPlusTree
    from repro.btree.leaves import LeafNode


@dataclass
class TreeStats:
    """Snapshot of a tree's structure."""

    height: int = 0
    item_count: int = 0
    inner_nodes: int = 0
    leaf_count: int = 0
    compact_leaf_count: int = 0
    learned_leaf_count: int = 0
    #: Leaf count per registered kind (``"standard"``, ``"compact"``,
    #: ``"learned"``, third-party names).
    leaves_by_kind: Dict[str, int] = field(default_factory=dict)
    #: Leaf count per representation/capacity class.  Keys are the
    #: ``"<kind>/<capacity>"`` strings of :func:`_leaf_class`
    #: (:attr:`~repro.btree.leaves.LeafNode.kind`), e.g.
    #: ``"compact/128"`` or ``"standard/16"``.
    leaves_by_class: Dict[str, int] = field(default_factory=dict)
    #: Sum of count/capacity over leaves, divided by leaf_count.
    avg_leaf_occupancy: float = 0.0
    index_bytes: int = 0
    bytes_by_category: Dict[str, int] = field(default_factory=dict)

    @property
    def compact_fraction(self) -> float:
        """Fraction of leaves using a compact representation."""
        if self.leaf_count == 0:
            return 0.0
        return self.compact_leaf_count / self.leaf_count

    @property
    def learned_fraction(self) -> float:
        """Fraction of leaves using the learned representation."""
        if self.leaf_count == 0:
            return 0.0
        return self.learned_leaf_count / self.leaf_count


def _leaf_class(leaf: "LeafNode") -> str:
    return f"{leaf.kind}/{leaf.capacity}"


def collect_stats(tree: "BPlusTree") -> TreeStats:
    """Walk ``tree`` and return a :class:`TreeStats` snapshot."""
    from repro.btree.tree import InnerNode  # local import to avoid a cycle

    stats = TreeStats(
        height=tree.height,
        item_count=len(tree),
        index_bytes=tree.index_bytes,
        bytes_by_category={
            k: v for k, v in tree.allocator.breakdown().items() if k != "table"
        },
    )
    stack = [tree.root]
    occupancy_sum = 0.0
    while stack:
        node = stack.pop()
        if isinstance(node, InnerNode):
            stats.inner_nodes += 1
            stack.extend(node.children)
        else:
            stats.leaf_count += 1
            kind = node.kind
            if kind == "compact":
                stats.compact_leaf_count += 1
            elif kind == "learned":
                stats.learned_leaf_count += 1
            stats.leaves_by_kind[kind] = stats.leaves_by_kind.get(kind, 0) + 1
            cls = _leaf_class(node)
            stats.leaves_by_class[cls] = stats.leaves_by_class.get(cls, 0) + 1
            if node.capacity:
                occupancy_sum += node.count / node.capacity
    if stats.leaf_count:
        stats.avg_leaf_occupancy = occupancy_sum / stats.leaf_count
    return stats
