"""Pluggable leaf-kind registry: conversion targets as first-class names.

The paper's elasticity was a two-point dial baked in as scattered
``is_compact`` booleans.  This module turns leaf representations into
registered *kinds*: each kind supplies construction hooks, and the
tree / elasticity / cache / stats layers dispatch on
:attr:`~repro.btree.leaves.LeafNode.kind` plus the registered
:class:`LeafKindSpec` instead of probing concrete classes.  New
representations (gapped leaves, hash leaves, ...) become one
:func:`register_leaf_kind` call plus a ``leaf_kinds`` selection on
:class:`~repro.core.config.ElasticConfig` — no edits to the conversion
machinery.

The built-in kinds mirror the three-point elastic frontier:

* ``"standard"`` — :class:`~repro.btree.leaves.StandardLeaf`, inline
  keys, fastest scans, largest footprint.
* ``"compact"`` — :class:`~repro.blindi.leaf.CompactLeaf`, blind-trie
  payload + indirect keys, smallest footprint.
* ``"learned"`` — :class:`~repro.learned.leaf.LearnedLeaf`,
  piecewise-linear models + indirect keys, between the two on space and
  cheapest per point probe on distributions the models fit.

Hooks receive a :class:`LeafKindContext` (host tree, backing table,
elastic config) so registrations stay closures over nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import LeafKindError

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.btree.leaves import LeafNode
    from repro.btree.tree import BPlusTree
    from repro.core.config import ElasticConfig
    from repro.table.table import Table

#: (key, tuple id) pairs in key order, the conversion interchange format.
Items = List[Tuple[bytes, int]]


@dataclass
class LeafKindContext:
    """Everything a kind's hooks may need to build a leaf.

    ``config`` is the elastic configuration when the build happens under
    an elasticity controller (hooks then honour its representation
    knobs and set the k+1 elastic underflow invariant), or ``None`` for
    static trees.
    """

    tree: "BPlusTree"
    table: Optional["Table"] = None
    config: Optional["ElasticConfig"] = None

    def require_table(self, kind: str) -> "Table":
        if self.table is None:
            raise LeafKindError(
                f"leaf kind {kind!r} stores keys indirectly and needs a "
                "backing table, but the host tree has none"
            )
        return self.table


@dataclass(frozen=True)
class LeafKindSpec:
    """One registered leaf kind.

    ``from_sorted(ctx, items, capacity)`` builds a leaf over sorted
    items (``capacity=None`` means the kind's default for the host
    tree); ``build(ctx)`` makes an empty leaf; ``convert(ctx, leaf,
    capacity)`` rebuilds an existing leaf of any kind as this kind
    (the default materializes ``keys_and_tids`` — charging the source
    kind's key loads — and rebuilds).  ``size_for(ctx, capacity)`` is
    an optional byte estimate for capacity planning.  ``cache_rows``
    marks kinds whose verify loads the adaptive row cache can
    short-circuit (indirect-key kinds); ``cache_supported`` gates
    attaching a :class:`~repro.cache.CacheConfig` at all.
    """

    name: str
    from_sorted: Callable[[LeafKindContext, Items, Optional[int]], "LeafNode"]
    build: Callable[[LeafKindContext], "LeafNode"]
    convert: Callable[
        [LeafKindContext, "LeafNode", Optional[int]], "LeafNode"
    ]
    size_for: Optional[Callable[[LeafKindContext, int], int]] = None
    cache_rows: bool = False
    cache_supported: bool = True


class LeafKindRegistry:
    """Name -> :class:`LeafKindSpec` mapping with typed errors."""

    def __init__(self) -> None:
        self._kinds: Dict[str, LeafKindSpec] = {}

    def register(
        self,
        name: str,
        *,
        from_sorted: Callable[
            [LeafKindContext, Items, Optional[int]], "LeafNode"
        ],
        build: Optional[Callable[[LeafKindContext], "LeafNode"]] = None,
        convert: Optional[
            Callable[[LeafKindContext, "LeafNode", Optional[int]], "LeafNode"]
        ] = None,
        size_for: Optional[Callable[[LeafKindContext, int], int]] = None,
        cache_rows: bool = False,
        cache_supported: bool = True,
        replace: bool = False,
    ) -> LeafKindSpec:
        """Register ``name``; returns the spec.

        Raises:
            LeafKindError: on a duplicate name without ``replace=True``
                or an invalid name.
        """
        if not name or not isinstance(name, str):
            raise LeafKindError(f"invalid leaf kind name {name!r}")
        if name in self._kinds and not replace:
            raise LeafKindError(
                f"leaf kind {name!r} is already registered "
                "(pass replace=True to override)"
            )
        if build is None:
            def build(ctx: LeafKindContext) -> "LeafNode":
                return from_sorted(ctx, [], None)
        if convert is None:
            def convert(
                ctx: LeafKindContext,
                leaf: "LeafNode",
                capacity: Optional[int] = None,
            ) -> "LeafNode":
                keys, tids = leaf.keys_and_tids()
                return from_sorted(ctx, list(zip(keys, tids)), capacity)
        spec = LeafKindSpec(
            name=name,
            from_sorted=from_sorted,
            build=build,
            convert=convert,
            size_for=size_for,
            cache_rows=cache_rows,
            cache_supported=cache_supported,
        )
        self._kinds[name] = spec
        return spec

    def get(self, name: str) -> LeafKindSpec:
        try:
            return self._kinds[name]
        except KeyError:
            raise LeafKindError(
                f"unknown leaf kind {name!r}; registered kinds: "
                f"{', '.join(sorted(self._kinds)) or '(none)'}"
            ) from None

    def unregister(self, name: str) -> None:
        """Remove ``name`` (third-party kinds in tests/plugins)."""
        if name not in self._kinds:
            raise LeafKindError(f"unknown leaf kind {name!r}")
        del self._kinds[name]

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._kinds))

    def __contains__(self, name: str) -> bool:
        return name in self._kinds


#: The process-wide registry the elastic machinery resolves against.
DEFAULT_REGISTRY = LeafKindRegistry()


def register_leaf_kind(name: str, **kwargs) -> LeafKindSpec:
    """Register a leaf kind on the default registry (see
    :meth:`LeafKindRegistry.register`)."""
    return DEFAULT_REGISTRY.register(name, **kwargs)


def unregister_leaf_kind(name: str) -> None:
    """Remove a kind from the default registry."""
    DEFAULT_REGISTRY.unregister(name)


def leaf_kind(name: str) -> LeafKindSpec:
    """Resolve ``name`` on the default registry.

    Raises:
        LeafKindError: if no such kind is registered.
    """
    return DEFAULT_REGISTRY.get(name)


def available_leaf_kinds() -> Tuple[str, ...]:
    """Sorted names of every registered kind."""
    return DEFAULT_REGISTRY.names()


# ----------------------------------------------------------------------
# Built-in kinds.  Hook bodies import lazily so this module stays free
# of cycles with the tree/representation modules.
# ----------------------------------------------------------------------
def _standard_from_sorted(
    ctx: LeafKindContext, items: Items, capacity: Optional[int] = None
) -> "LeafNode":
    # Standard leaves are fixed at the host tree's leaf capacity; the
    # elastic capacity ladder only applies to converted kinds.
    return ctx.tree.make_standard_leaf(items)


def _standard_size_for(ctx: LeafKindContext, capacity: int) -> int:
    from repro.btree.leaves import LEAF_HEADER_BYTES, TID_BYTES

    return LEAF_HEADER_BYTES + capacity * (ctx.tree.key_width + TID_BYTES)


def _elastic_capacity(ctx: LeafKindContext, capacity: Optional[int]) -> int:
    if capacity is not None:
        return capacity
    return 2 * ctx.tree.leaf_capacity


def _compact_from_sorted(
    ctx: LeafKindContext, items: Items, capacity: Optional[int] = None
) -> "LeafNode":
    from repro.blindi.leaf import CompactLeaf
    from repro.blindi.seqtree import SeqTreeRep

    config = ctx.config
    leaf = CompactLeaf(
        _elastic_capacity(ctx, capacity),
        ctx.require_table("compact"),
        ctx.tree.allocator,
        ctx.tree.cost,
        key_width=ctx.tree.key_width,
        rep_cls=config.rep_cls if config is not None else SeqTreeRep,
        rep_kwargs=config.rep_kwargs() if config is not None else None,
        breathing_slack=(
            config.breathing_slack if config is not None else None
        ),
        items=items or None,
    )
    if config is not None:
        leaf.elastic_underflow = True
    return leaf


def _compact_size_for(ctx: LeafKindContext, capacity: int) -> int:
    from repro.blindi.breathing import TID_BYTES
    from repro.blindi.leaf import COMPACT_HEADER_BYTES
    from repro.blindi.seqtree import SeqTreeRep

    config = ctx.config
    rep_cls = config.rep_cls if config is not None else SeqTreeRep
    rep_kwargs = config.rep_kwargs() if config is not None else {}
    rep = rep_cls(
        ctx.require_table("compact"), ctx.tree.key_width, **rep_kwargs
    )
    return (
        COMPACT_HEADER_BYTES
        + rep.payload_bytes(capacity)
        + capacity * TID_BYTES
    )


def _learned_from_sorted(
    ctx: LeafKindContext, items: Items, capacity: Optional[int] = None
) -> "LeafNode":
    from repro.learned.leaf import LearnedLeaf

    config = ctx.config
    leaf = LearnedLeaf(
        _elastic_capacity(ctx, capacity),
        ctx.require_table("learned"),
        ctx.tree.allocator,
        ctx.tree.cost,
        key_width=ctx.tree.key_width,
        epsilon=config.learned_epsilon if config is not None else 8,
        breathing_slack=(
            config.breathing_slack if config is not None else None
        ),
        items=items or None,
    )
    if config is not None:
        leaf.elastic_underflow = True
    return leaf


def _learned_size_for(ctx: LeafKindContext, capacity: int) -> int:
    from repro.blindi.breathing import TID_BYTES
    from repro.learned.leaf import LEARNED_HEADER_BYTES

    return LEARNED_HEADER_BYTES + capacity * TID_BYTES


register_leaf_kind(
    "standard",
    from_sorted=_standard_from_sorted,
    size_for=_standard_size_for,
    cache_rows=False,
)
register_leaf_kind(
    "compact",
    from_sorted=_compact_from_sorted,
    size_for=_compact_size_for,
    cache_rows=True,
)
register_leaf_kind(
    "learned",
    from_sorted=_learned_from_sorted,
    size_for=_learned_size_for,
    cache_rows=True,
)
