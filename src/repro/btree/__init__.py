"""STX-style B+-tree substrate with pluggable leaf representations.

This is the baseline index the paper transforms (section 6 uses the STX
B+-tree [2] with 16-key leaves).  The tree keeps full keys in inner nodes
and delegates all leaf-level behaviour to a leaf ADT
(:class:`~repro.btree.leaves.LeafNode`) — exactly the boundary the
elastic framework exploits (section 3: leaves are "mini indexes" with
their own abstract data type).  Overflow and underflow events are routed
through pluggable handlers so that the elasticity algorithm (section 4)
can piggyback leaf conversion on splits and merges.
"""

from repro.btree.leaves import LeafNode, StandardLeaf, LeafFullError
from repro.btree.tree import BPlusTree, InnerNode
from repro.btree.stats import TreeStats

__all__ = [
    "LeafNode",
    "StandardLeaf",
    "LeafFullError",
    "BPlusTree",
    "InnerNode",
    "TreeStats",
]
