"""A minimal in-memory DBMS facade: tables with multiple secondary indexes.

This is the paper's motivating setting made concrete (section 1): a
table with "many high-cardinality columns that require indexing,
resulting in index sizes that are roughly the same size as the data set
— i.e., indexes take up >= 50% of DBMS memory".  A
:class:`~repro.db.database.Database` hosts fixed-schema tables, each
with any number of ordered secondary indexes over column tuples; every
index can independently be a plain B+-tree, an elastic B+-tree with its
own slice of the memory budget, or any registered comparator.
"""

from repro.db.database import Database, DBTable, SecondaryIndex, TableView
from repro.db.write import WriteBatch

__all__ = [
    "Database", "DBTable", "SecondaryIndex", "TableView", "WriteBatch",
]
