"""The transactional write surface: :class:`WriteBatch`.

Every mutation in the database flows through one entry point —
``Database.begin_batch()`` returns a :class:`WriteBatch`, operations
are *staged* (validated, nothing touched), and :meth:`WriteBatch.
commit` runs the whole pipeline::

    facade -> WAL append -> group commit -> shard/index apply -> tick

The scalar spellings (``DBTable.insert`` / ``insert_batch`` /
``delete``) are one-operation auto-committed batches over the same
path, so a database without a write-ahead log charges **byte-identical
costs** to the pre-batch write path — staging is pure Python, the WAL
phases vanish, and the apply phase replays the exact historical charge
sequences.

With a log configured, commit first appends one logical redo record per
row (``log_append`` each), emits the batch's
:class:`~repro.obs.WalAppendEvent`, and schedules group-commit fsync
barriers (see :mod:`repro.wal.log`); only then does it mutate volatile
state, one staged operation at a time, ticking the budget arbiter after
each — which is also what fixes the historical gap where batched writes
never drove ``Database._tick``.  A scripted kill firing during the
append or fsync phase leaves volatile state untouched; one firing
between applies leaves a prefix applied, which recovery discards
wholesale and rebuilds from the durable log.

Usage::

    with db.begin_batch() as batch:
        batch.insert(orders, (7, 1200))
        batch.insert_batch(orders, more_rows)
        batch.delete(orders, stale_tid)
    # committed on clean exit; batch.tids / batch.deleted_rows hold
    # the results.  An exception inside the block discards the batch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.errors import WalError
from repro.obs import WalAppendEvent

if TYPE_CHECKING:
    from repro.db.database import Database, DBTable

#: Modeled payload size of a delete record (one 8-byte tuple id).
_DELETE_PAYLOAD_BYTES = 8


class WriteBatch:
    """A staged, atomic-on-commit group of row mutations.

    Created by :meth:`Database.begin_batch <repro.db.database.Database.
    begin_batch>`.  Staging validates arguments but touches neither the
    log nor any table; :meth:`commit` (or a clean ``with``-block exit)
    runs the full write pipeline.  A batch commits at most once;
    staging into a committed batch raises
    :class:`~repro.errors.WalError`.
    """

    def __init__(self, db: "Database") -> None:
        self._db = db
        #: Staged ops: ("insert", table, row) | ("insert_rows", table,
        #: rows) | ("delete", table, tid), in stage order.
        self._staged: List[Tuple[str, "DBTable", object]] = []
        self._committed = False
        #: Tuple ids of every inserted row, in stage order (set by
        #: :meth:`commit`).
        self.tids: Optional[List[int]] = None
        #: Removed rows of every staged delete, in stage order.
        self.deleted_rows: List[Tuple] = []

    # ------------------------------------------------------------------
    # Staging
    # ------------------------------------------------------------------
    def insert(self, table: "Union[DBTable, str]", row: Sequence) -> None:
        """Stage one row insert."""
        dbtable = self._resolve(table)
        self._staged.append(("insert", dbtable, self._validate(dbtable, row)))

    def insert_batch(
        self, table: "Union[DBTable, str]", rows: Sequence[Sequence]
    ) -> None:
        """Stage a row batch, applied with one shared-descent batch
        insert per index (the gapped data-parallel unit the log's group
        commit amortizes over)."""
        dbtable = self._resolve(table)
        self._staged.append((
            "insert_rows",
            dbtable,
            [self._validate(dbtable, row) for row in rows],
        ))

    def delete(self, table: "Union[DBTable, str]", tid: int) -> None:
        """Stage one delete by tuple id (liveness checked at apply)."""
        self._staged.append(("delete", self._resolve(table), tid))

    def _resolve(self, table: "Union[DBTable, str]") -> "DBTable":
        self._check_open()
        if isinstance(table, str):
            return self._db.tables[table]
        return table

    @staticmethod
    def _validate(dbtable: "DBTable", row: Sequence) -> Tuple:
        row = tuple(row)
        if len(row) != len(dbtable.schema.column_names):
            raise ValueError(
                f"row has {len(row)} columns, schema needs "
                f"{len(dbtable.schema.column_names)}"
            )
        return row

    def _check_open(self) -> None:
        if self._committed:
            raise WalError("write batch already committed")

    @property
    def staged_ops(self) -> int:
        """Number of staged operations (row batches count as one)."""
        return len(self._staged)

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------
    def commit(self) -> List[int]:
        """Run the write pipeline; returns inserted tuple ids in stage
        order.  With a write-ahead log: append all records, schedule
        group-commit barriers, then apply — any scripted
        :class:`~repro.wal.CrashError` before the apply phase leaves
        volatile state untouched."""
        self._check_open()
        self._committed = True
        db = self._db
        wal = db.wal
        if wal is not None and self._staged:
            records = []
            for op, dbtable, payload in self._staged:
                name = dbtable.schema.name
                row_bytes = dbtable.schema.row_bytes
                if op == "insert":
                    records.append(
                        wal.append("insert", name, payload, row_bytes)
                    )
                elif op == "insert_rows":
                    for row in payload:
                        records.append(
                            wal.append("insert", name, row, row_bytes)
                        )
                else:
                    records.append(wal.append(
                        "delete", name, payload, _DELETE_PAYLOAD_BYTES
                    ))
            if records and obs.is_enabled():
                obs.emit(WalAppendEvent(
                    records=len(records),
                    batch_ops=len(self._staged),
                    nbytes=sum(r.nbytes for r in records),
                    streams=wal.config.shards,
                    first_lsn=records[0].lsn,
                    last_lsn=records[-1].lsn,
                ))
            wal.group_commit()
        tids: List[int] = []
        for op, dbtable, payload in self._staged:
            if op == "insert":
                tids.append(dbtable._apply_insert(payload))
                ops = 1
            elif op == "insert_rows":
                tids.extend(dbtable._apply_insert_rows(payload))
                ops = len(payload)
            else:
                self.deleted_rows.append(dbtable._apply_delete(payload))
                ops = 1
            if wal is not None:
                wal.notify_applied()
            db._tick(ops)
        self.tids = tids
        return tids

    # ------------------------------------------------------------------
    def __enter__(self) -> "WriteBatch":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None and not self._committed:
            self.commit()
        return False
