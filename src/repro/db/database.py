"""Tables with multiple ordered secondary indexes over one row store."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import build_index
from repro.exec import BatchExecutor
from repro.keys.encoding import encode_f64, encode_i64, encode_str
from repro.memory.allocator import TrackingAllocator
from repro.memory.cost_model import CostModel
from repro.table.table import RowSchema, Table


def _encode_column(value, ctype: str, width: int) -> bytes:
    """Order-preserving encoding of one typed column value."""
    if ctype == "u64":
        return int(value).to_bytes(width, "big")
    if ctype == "i64":
        return encode_i64(int(value))
    if ctype == "f64":
        return encode_f64(float(value))
    return encode_str(str(value), width)


class TableView:
    """A per-index view of a table: same rows, index-specific keys.

    Every secondary index extracts its key from different columns of the
    same stored row; compact (blind-trie) leaves load keys through their
    view, charging the same indirect access as a dedicated table would.
    """

    def __init__(self, table: Table, key_of_row) -> None:
        self._table = table
        self._key_of_row = key_of_row

    def load_key(self, tid: int) -> bytes:
        row = self._table.live_row(tid)
        self._table.cost_model.key_loads(1)
        return self._key_of_row(row)

    def load_key_batched(self, tid: int) -> bytes:
        row = self._table.live_row(tid)
        self._table.cost_model.key_loads_batched(1)
        return self._key_of_row(row)

    def peek_key(self, tid: int) -> bytes:
        return self._key_of_row(self._table.live_row(tid))


class SecondaryIndex:
    """One ordered secondary index over a column tuple."""

    def __init__(
        self,
        name: str,
        columns: Tuple[str, ...],
        widths: Tuple[int, ...],
        positions: Tuple[int, ...],
        index,
        view: TableView,
        types: Tuple[str, ...] = (),
    ) -> None:
        self.name = name
        self.columns = columns
        self.widths = widths
        self.types = types or tuple("u64" for _ in columns)
        self._positions = positions
        self.index = index
        self.view = view
        self._executor: Optional[BatchExecutor] = None

    @property
    def executor(self) -> BatchExecutor:
        """Lazily-built batch executor over this index."""
        if self._executor is None or self._executor.index is not self.index:
            self._executor = BatchExecutor(self.index)
        return self._executor

    @property
    def key_width(self) -> int:
        return sum(self.widths)

    def key_of_values(self, values: Sequence) -> bytes:
        """Order-preserving concatenation of the typed column values."""
        if len(values) != len(self.widths):
            raise ValueError(
                f"index {self.name!r} needs {len(self.widths)} values"
            )
        return b"".join(
            _encode_column(v, t, w)
            for v, t, w in zip(values, self.types, self.widths)
        )

    def key_of_row(self, row: Tuple[int, ...]) -> bytes:
        return self.key_of_values([row[p] for p in self._positions])

    @property
    def index_bytes(self) -> int:
        return self.index.index_bytes


class DBTable:
    """A fixed-schema table plus its secondary indexes."""

    def __init__(self, db: "Database", schema: RowSchema) -> None:
        self.db = db
        self.schema = schema
        self.table = Table(
            key_of_row=lambda row: b"",  # primary access is by tid
            row_bytes=schema.row_bytes,
            cost_model=db.cost,
            allocator=db.allocator,
        )
        self.indexes: Dict[str, SecondaryIndex] = {}

    # ------------------------------------------------------------------
    # Index management
    # ------------------------------------------------------------------
    def create_index(
        self,
        name: str,
        columns: Sequence[str],
        kind: str = "stx",
        size_bound_bytes: Optional[int] = None,
        **index_kwargs,
    ) -> SecondaryIndex:
        """Create an ordered secondary index over ``columns``.

        ``kind`` is any benchmark index name (``stx``, ``elastic``,
        ``hot``, ...); elastic indexes take their own
        ``size_bound_bytes`` slice of the memory budget.  Existing rows
        are back-filled.
        """
        if name in self.indexes:
            raise ValueError(f"index {name!r} already exists")
        positions = tuple(self.schema.column_names.index(c) for c in columns)
        widths = tuple(self.schema.column_widths[p] for p in positions)
        types = tuple(self.schema.type_of(p) for p in positions)
        secondary = SecondaryIndex(
            name, tuple(columns), widths, positions, None, None, types
        )
        view = TableView(self.table, secondary.key_of_row)
        # Each index gets its own allocator so its footprint (and, for
        # elastic indexes, its budget observations) is isolated; the
        # shared cost model keeps one performance ledger.
        index = build_index(
            kind,
            table=view,
            allocator=TrackingAllocator(cost_model=self.db.cost),
            cost=self.db.cost,
            key_width=secondary.key_width,
            size_bound_bytes=size_bound_bytes,
            **index_kwargs,
        )
        secondary.index = index
        secondary.view = view
        self.indexes[name] = secondary
        # Back-fill existing rows.
        for tid, row in self.table.iter_live():
            index.insert(secondary.key_of_row(row), tid)
        return secondary

    # ------------------------------------------------------------------
    # Row operations
    # ------------------------------------------------------------------
    def insert(self, row: Sequence[int]) -> int:
        """Store a row and update every secondary index."""
        row = tuple(row)
        if len(row) != len(self.schema.column_names):
            raise ValueError(
                f"row has {len(row)} columns, schema needs "
                f"{len(self.schema.column_names)}"
            )
        tid = self.table.insert_row(row)
        for secondary in self.indexes.values():
            secondary.index.insert(secondary.key_of_row(row), tid)
        return tid

    def insert_many(self, rows: Sequence[Sequence[int]]) -> List[int]:
        """Store a batch of rows, updating every index with one batch
        insert per index (shared descents on batch-capable indexes)."""
        stored: List[Tuple[Tuple, int]] = []
        tids: List[int] = []
        for row in rows:
            row = tuple(row)
            if len(row) != len(self.schema.column_names):
                raise ValueError(
                    f"row has {len(row)} columns, schema needs "
                    f"{len(self.schema.column_names)}"
                )
            tid = self.table.insert_row(row)
            stored.append((row, tid))
            tids.append(tid)
        for secondary in self.indexes.values():
            secondary.executor.insert_many(
                [(secondary.key_of_row(row), tid) for row, tid in stored]
            )
        return tids

    def delete(self, tid: int) -> Tuple[int, ...]:
        """Remove a row from the store and every index."""
        row = self.table.row(tid)
        for secondary in self.indexes.values():
            secondary.index.remove(secondary.key_of_row(row))
        self.table.delete_row(tid)
        return row

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, index_name: str, values: Sequence[int]) -> Optional[Tuple]:
        """Point query through an index; returns the row or None."""
        secondary = self.indexes[index_name]
        tid = secondary.index.lookup(secondary.key_of_values(values))
        if tid is None:
            return None
        return self.table.row(tid)

    def get_many(
        self, index_name: str, values_batch: Sequence[Sequence[int]]
    ) -> List[Optional[Tuple]]:
        """Batched point queries through one index; row or ``None`` per
        entry, aligned with the input order."""
        secondary = self.indexes[index_name]
        keys = [secondary.key_of_values(values) for values in values_batch]
        tids = secondary.executor.get_many(keys)
        return [
            self.table.row(tid) if tid is not None else None for tid in tids
        ]

    def scan_many(
        self,
        index_name: str,
        start_values_batch: Sequence[Sequence[int]],
        count: int,
    ) -> List[List[Tuple]]:
        """Batched range queries: ``count`` rows per start, index order."""
        secondary = self.indexes[index_name]
        starts = [secondary.key_of_values(v) for v in start_values_batch]
        return [
            [self.table.row(tid) for _, tid in items]
            for items in secondary.executor.range_many(starts, count)
        ]

    def scan(
        self, index_name: str, start_values: Sequence[int], count: int
    ) -> List[Tuple]:
        """Range query: ``count`` rows from ``start_values`` in index order."""
        secondary = self.indexes[index_name]
        start = secondary.key_of_values(start_values)
        return [
            self.table.row(tid)
            for _, tid in secondary.index.scan(start, count)
        ]

    def included_scan(
        self, index_name: str, start_values: Sequence[int], count: int
    ) -> List[bytes]:
        """Included-column query (section 2): answered from index keys
        alone — no row fetches on internal-key leaves."""
        secondary = self.indexes[index_name]
        start = secondary.key_of_values(start_values)
        return [key for key, _ in secondary.index.scan(start, count)]

    def __len__(self) -> int:
        return len(self.table)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def memory_report(self) -> Dict[str, float]:
        """Dataset vs. index memory — the section 1 overhead numbers."""
        index_bytes = {
            name: s.index_bytes for name, s in self.indexes.items()
        }
        total_index = sum(index_bytes.values())
        dataset = self.table.dataset_bytes
        total = dataset + total_index
        return {
            "dataset_bytes": dataset,
            "index_bytes_total": total_index,
            "index_fraction_of_memory": total_index / total if total else 0.0,
            **{f"index_bytes[{n}]": b for n, b in index_bytes.items()},
        }


class Database:
    """A set of tables sharing one cost account and allocator."""

    def __init__(self, cost_model: Optional[CostModel] = None) -> None:
        self.cost = cost_model if cost_model is not None else CostModel()
        self.allocator = TrackingAllocator(cost_model=self.cost)
        self.tables: Dict[str, DBTable] = {}

    def create_table(self, schema: RowSchema) -> DBTable:
        if schema.name in self.tables:
            raise ValueError(f"table {schema.name!r} already exists")
        table = DBTable(self, schema)
        self.tables[schema.name] = table
        return table

    @staticmethod
    def split_budget(total_bytes: int, shares: Sequence[float]) -> List[int]:
        """Divide an index memory budget across indexes by weight."""
        weight = sum(shares)
        return [int(total_bytes * share / weight) for share in shares]
