"""Tables with multiple ordered secondary indexes over one row store."""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.cache import CacheConfig, IndexCache
from repro.cluster import ReplicaConfig, ReplicaSet, build_replica_set
from repro.engine import (
    BudgetArbiter,
    ShardedIndex,
    build_sharded_index,
    largest_remainder,
    make_executor,
)
from repro.db.write import WriteBatch
from repro.errors import (
    CacheConfigError,
    IndexExistsError,
    InvalidBudgetError,
    ShardConfigError,
    TuningConfigError,
    WalError,
)
from repro.exec import BatchExecutor
from repro.keys.encoding import encode_f64, encode_i64, encode_str
from repro.memory.allocator import TrackingAllocator
from repro.memory.cost_model import CostModel
from repro.obs import Event, Observer
from repro.registry import build_index
from repro.table.table import RowSchema, Table
from repro.wal.log import TableSnapshot, WalConfig, WriteAheadLog


def _encode_column(value, ctype: str, width: int) -> bytes:
    """Order-preserving encoding of one typed column value."""
    if ctype == "u64":
        return int(value).to_bytes(width, "big")
    if ctype == "i64":
        return encode_i64(int(value))
    if ctype == "f64":
        return encode_f64(float(value))
    return encode_str(str(value), width)


class TableView:
    """A per-index view of a table: same rows, index-specific keys.

    Every secondary index extracts its key from different columns of the
    same stored row; compact (blind-trie) leaves load keys through their
    view, charging the same indirect access as a dedicated table would.
    """

    def __init__(self, table: Table, key_of_row) -> None:
        self._table = table
        self._key_of_row = key_of_row

    def load_key(self, tid: int) -> bytes:
        row = self._table.live_row(tid)
        self._table.cost_model.key_loads(1)
        return self._key_of_row(row)

    def load_key_batched(self, tid: int) -> bytes:
        row = self._table.live_row(tid)
        self._table.cost_model.key_loads_batched(1)
        return self._key_of_row(row)

    def peek_key(self, tid: int) -> bytes:
        return self._key_of_row(self._table.live_row(tid))


class SecondaryIndex:
    """One ordered secondary index over a column tuple."""

    def __init__(
        self,
        name: str,
        columns: Tuple[str, ...],
        widths: Tuple[int, ...],
        positions: Tuple[int, ...],
        index,
        view: TableView,
        types: Tuple[str, ...] = (),
    ) -> None:
        self.name = name
        self.columns = columns
        self.widths = widths
        self.types = types or tuple("u64" for _ in columns)
        self._positions = positions
        self.index = index
        self.view = view
        self._executor: Optional[BatchExecutor] = None
        #: Parked by the self-tuning advisor: writes skip the index and
        #: the first read rebuilds it (see :mod:`repro.tuning`).
        self.parked = False
        #: Creation-time build recipe the advisor rebuilds from (kind,
        #: bound, shards, partitioner, cache config, index kwargs).
        self.build_info: Dict = {}

    @property
    def executor(self) -> BatchExecutor:
        """Lazily-built batch executor over this index."""
        if self._executor is None or self._executor.index is not self.index:
            self._executor = BatchExecutor(self.index)
        return self._executor

    @property
    def key_width(self) -> int:
        return sum(self.widths)

    def key_of_values(self, values: Sequence) -> bytes:
        """Order-preserving concatenation of the typed column values."""
        if len(values) != len(self.widths):
            raise ValueError(
                f"index {self.name!r} needs {len(self.widths)} values"
            )
        return b"".join(
            _encode_column(v, t, w)
            for v, t, w in zip(values, self.types, self.widths)
        )

    def key_of_row(self, row: Tuple[int, ...]) -> bytes:
        return self.key_of_values([row[p] for p in self._positions])

    @property
    def index_bytes(self) -> int:
        return self.index.index_bytes


class DBTable:
    """A fixed-schema table plus its secondary indexes."""

    def __init__(self, db: "Database", schema: RowSchema) -> None:
        self.db = db
        self.schema = schema
        self.table = Table(
            key_of_row=lambda row: b"",  # primary access is by tid
            row_bytes=schema.row_bytes,
            cost_model=db.cost,
            allocator=db.allocator,
        )
        self.indexes: Dict[str, SecondaryIndex] = {}

    # ------------------------------------------------------------------
    # Index management
    # ------------------------------------------------------------------
    def create_index(
        self,
        name: str,
        columns: Sequence[str],
        kind: str = "stx",
        size_bound_bytes: Optional[int] = None,
        shards: int = 1,
        partitioner: str = "hash",
        parallel=False,
        cache: Optional[CacheConfig] = None,
        replicas: Optional[ReplicaConfig] = None,
        **index_kwargs,
    ) -> SecondaryIndex:
        """Create an ordered secondary index over ``columns``.

        ``kind`` is any registered index name (``stx``, ``elastic``,
        ``hot``, ...); elastic indexes take their own
        ``size_bound_bytes`` slice of the memory budget.  With
        ``shards > 1`` the index is partitioned across that many
        independent ``kind`` instances behind the engine's router
        (``partitioner``: ``"hash"`` or ``"range"``); an elastic bound
        is split equally across the shards.  ``parallel`` selects the
        scatter/gather backend for a sharded index: ``False`` (serial,
        byte-identical to a loop over shards), ``True`` (the default
        parallel executor), a worker count, or a ready
        :class:`~repro.engine.ShardExecutor` instance.  Elastic indexes
        — sharded or not — enroll with the database's budget arbiter
        when one is enabled.  A :class:`~repro.cache.CacheConfig` as
        ``cache`` attaches a budget-aware adaptive read cache (one per
        shard when sharded); elastic cached indexes also enroll the
        cache with the budget arbiter, which then resizes the cache's
        budget by observed hit-rate demand.  Existing rows are
        back-filled.

        A :class:`~repro.cluster.ReplicaConfig` as ``replicas`` lifts
        the index into the cluster tier: ``replicas.replicas`` full
        copies (each possibly sharded underneath), each built from its
        own divergent profile, with reads routed per query class and
        writes fanned out to every copy — see :mod:`repro.cluster`.
        ``replicas=None`` or a single-replica config takes the plain
        path above, byte-identical to a database without the cluster
        tier.
        """
        if name in self.indexes:
            raise IndexExistsError(f"index {name!r} already exists")
        if shards < 1:
            raise ShardConfigError("shards must be >= 1")
        # Pre-mutation argument image for the DDL history (crash
        # recovery replays it verbatim; see Database.snapshot).
        ddl_kwargs = dict(
            kind=kind, size_bound_bytes=size_bound_bytes, shards=shards,
            partitioner=partitioner, parallel=parallel, cache=cache,
            replicas=replicas, **index_kwargs,
        )
        if replicas is not None:
            replicas.validate()
            if replicas.replicas == 1:
                # Exact passthrough: a one-replica cluster is the plain
                # (or sharded) index, no cluster machinery at all.  An
                # explicit single profile supplies the configuration.
                if replicas.profiles:
                    profile = replicas.profiles[0]
                    kind = profile.kind
                    if profile.cache is not None:
                        cache = profile.cache
                    index_kwargs = {
                        **index_kwargs, **profile.builder_kwargs()
                    }
                if replicas.total_bound_bytes is not None:
                    size_bound_bytes = replicas.total_bound_bytes
                replicas = None
        if cache is not None:
            cache.validate(size_bound_bytes)
        executor = make_executor(parallel)
        if executor is not None and shards == 1:
            raise ShardConfigError(
                "parallel execution needs shards > 1; an unsharded index "
                "has no scatter to parallelize"
            )
        positions = tuple(self.schema.column_names.index(c) for c in columns)
        widths = tuple(self.schema.column_widths[p] for p in positions)
        types = tuple(self.schema.type_of(p) for p in positions)
        secondary = SecondaryIndex(
            name, tuple(columns), widths, positions, None, None, types
        )
        view = TableView(self.table, secondary.key_of_row)
        # Each index (each shard, when sharded) gets its own allocator
        # so its footprint (and, for elastic indexes, its budget
        # observations) is isolated; the shared cost model keeps one
        # performance ledger.
        if replicas is not None:
            index = build_replica_set(
                replicas,
                kind=kind,
                table=view,
                cost=self.db.cost,
                key_width=secondary.key_width,
                size_bound_bytes=size_bound_bytes,
                name=f"{self.schema.name}.{name}",
                shards=shards,
                partitioner=partitioner,
                executor=executor,
                cache=cache,
                **index_kwargs,
            )
        elif shards == 1:
            index = build_index(
                kind,
                table=view,
                allocator=TrackingAllocator(cost_model=self.db.cost),
                cost=self.db.cost,
                key_width=secondary.key_width,
                size_bound_bytes=size_bound_bytes,
                **index_kwargs,
            )
            if cache is not None:
                if not hasattr(index, "attach_cache"):
                    raise CacheConfigError(
                        f"index kind {kind!r} does not support adaptive "
                        "caching"
                    )
                index.attach_cache(IndexCache(
                    cache, name=f"{self.schema.name}.{name}.cache",
                ))
        else:
            index = build_sharded_index(
                kind,
                table=view,
                cost=self.db.cost,
                key_width=secondary.key_width,
                n_shards=shards,
                partitioner=partitioner,
                size_bound_bytes=size_bound_bytes,
                name=f"{self.schema.name}.{name}",
                executor=executor,
                cache=cache,
                **index_kwargs,
            )
        secondary.index = index
        secondary.view = view
        secondary.build_info = dict(
            kind=kind, size_bound_bytes=size_bound_bytes, shards=shards,
            partitioner=partitioner, cache=cache,
            index_kwargs=dict(index_kwargs),
        )
        self.indexes[name] = secondary
        self.db._register_with_arbiter(self.schema.name, name, index)
        self.db._ddl.append((
            "create_index", self.schema.name, name, tuple(columns),
            ddl_kwargs,
        ))
        # Back-fill existing rows.
        for tid, row in self.table.iter_live():
            index.insert(secondary.key_of_row(row), tid)
        return secondary

    # ------------------------------------------------------------------
    # Row operations (the transactional write surface)
    # ------------------------------------------------------------------
    # One spelling per shape, mirroring the read side: ``insert`` /
    # ``insert_batch`` for stores, ``delete`` for removals.  All three
    # are one-operation auto-committed :class:`~repro.db.write.
    # WriteBatch`es, so every mutation — scalar or staged — runs the
    # same facade -> WAL -> index pipeline; ``db.begin_batch()`` stages
    # several operations under one commit (one log append phase, one
    # group-commit schedule).  The pre-redesign ``insert_many`` is a
    # DeprecationWarning shim over ``insert_batch``.

    def insert(self, row: Sequence[int]) -> int:
        """Store a row and update every secondary index."""
        batch = self.db.begin_batch()
        batch.insert(self, row)
        return batch.commit()[0]

    def insert_batch(self, rows: Sequence[Sequence[int]]) -> List[int]:
        """Store a batch of rows, updating every index with one batch
        insert per index (shared descents on batch-capable indexes)."""
        batch = self.db.begin_batch()
        batch.insert_batch(self, rows)
        return batch.commit()

    def insert_many(self, rows: Sequence[Sequence[int]]) -> List[int]:
        """Deprecated spelling of :meth:`insert_batch`."""
        warnings.warn(
            "insert_many is deprecated; use insert_batch (or stage the "
            "rows on db.begin_batch())",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.insert_batch(rows)

    def delete(self, tid: int) -> Tuple[int, ...]:
        """Remove a row from the store and every index."""
        batch = self.db.begin_batch()
        batch.delete(self, tid)
        batch.commit()
        return batch.deleted_rows[0]

    # Apply-phase primitives (called by WriteBatch.commit and by crash
    # recovery's log replay).  These preserve the historical charge
    # sequences exactly, so a WAL-less database stays byte-identical to
    # the pre-batch write path.
    def _apply_insert(self, row: Tuple) -> int:
        tid = self.table.insert_row(row)
        advisor = self.db.advisor
        for secondary in self.indexes.values():
            if secondary.parked:
                advisor.observe_parked_write(
                    self.schema.name, secondary.name, 1
                )
                continue
            key = secondary.key_of_row(row)
            secondary.index.insert(key, tid)
            if advisor is not None:
                advisor.observe_writes(
                    self.schema.name, secondary.name, (key,)
                )
        return tid

    def _apply_insert_rows(self, rows: Sequence[Tuple]) -> List[int]:
        stored: List[Tuple[Tuple, int]] = []
        tids: List[int] = []
        for row in rows:
            tid = self.table.insert_row(row)
            stored.append((row, tid))
            tids.append(tid)
        advisor = self.db.advisor
        for secondary in self.indexes.values():
            if secondary.parked:
                advisor.observe_parked_write(
                    self.schema.name, secondary.name, len(stored)
                )
                continue
            pairs = [
                (secondary.key_of_row(row), tid) for row, tid in stored
            ]
            secondary.executor.insert_batch(pairs)
            if advisor is not None:
                advisor.observe_writes(
                    self.schema.name, secondary.name,
                    [key for key, _ in pairs],
                )
        return tids

    def _apply_delete(self, tid: int) -> Tuple[int, ...]:
        row = self.table.row(tid)
        advisor = self.db.advisor
        for secondary in self.indexes.values():
            if secondary.parked:
                advisor.observe_parked_write(
                    self.schema.name, secondary.name, 1
                )
                continue
            key = secondary.key_of_row(row)
            secondary.index.remove(key)
            if advisor is not None:
                advisor.observe_deletes(
                    self.schema.name, secondary.name, (key,)
                )
        self.table.delete_row(tid)
        return row

    # ------------------------------------------------------------------
    # Queries (the keyword-consistent read surface)
    # ------------------------------------------------------------------
    # One spelling per shape: ``get`` / ``get_batch`` for point queries,
    # ``scan`` / ``scan_batch`` for ranges.  Scans take ``count`` as a
    # keyword and ``include_rows=False`` turns a scan into an
    # included-column query (section 2) answered from index keys alone.
    # The pre-redesign ``*_many`` / ``included_scan`` shims are gone;
    # only the positional scan count retains a DeprecationWarning shim.

    def get(self, index_name: str, values: Sequence[int]) -> Optional[Tuple]:
        """Point query through an index; returns the row or None."""
        secondary = self.indexes[index_name]
        if secondary.parked:
            self.db.advisor.unpark(self, secondary)
        with self.db.trace_op(f"db.get[{index_name}]"):
            key = secondary.key_of_values(values)
            tid = secondary.index.lookup(key)
            row = self.table.row(tid) if tid is not None else None
        advisor = self.db.advisor
        if advisor is not None:
            advisor.observe_point(self.schema.name, secondary.name, key)
        self.db._tick(1)
        return row

    def get_batch(
        self, index_name: str, values_batch: Sequence[Sequence[int]]
    ) -> List[Optional[Tuple]]:
        """Batched point queries through one index; row or ``None`` per
        entry, aligned with the input order."""
        secondary = self.indexes[index_name]
        if secondary.parked:
            self.db.advisor.unpark(self, secondary)
        with self.db.trace_op(f"db.get_batch[{index_name}]"):
            keys = [secondary.key_of_values(v) for v in values_batch]
            tids = secondary.executor.get_batch(keys)
            rows = [
                self.table.row(tid) if tid is not None else None
                for tid in tids
            ]
        advisor = self.db.advisor
        if advisor is not None:
            advisor.observe_batch(self.schema.name, secondary.name, keys)
        self.db._tick(len(keys))
        return rows

    def scan(
        self,
        index_name: str,
        start_values: Sequence[int],
        *legacy_count,
        count: Optional[int] = None,
        include_rows: bool = True,
    ) -> Union[List[Tuple], List[bytes]]:
        """Range query from ``start_values`` in index order.

        Returns ``count`` rows, or — with ``include_rows=False`` — the
        index keys alone (an included-column query, section 2: no row
        fetches on internal-key leaves).  ``count`` is keyword-only; the
        old positional spelling still works but warns.
        """
        count = self._scan_count(legacy_count, count)
        secondary = self.indexes[index_name]
        if secondary.parked:
            self.db.advisor.unpark(self, secondary)
        with self.db.trace_op(f"db.scan[{index_name}]"):
            start = secondary.key_of_values(start_values)
            items = secondary.index.scan(start, count)
            if include_rows:
                out = [self.table.row(tid) for _, tid in items]
            else:
                out = [key for key, _ in items]
        advisor = self.db.advisor
        if advisor is not None:
            advisor.observe_scan(
                self.schema.name, secondary.name, start, count
            )
        self.db._tick(1)
        return out

    def scan_batch(
        self,
        index_name: str,
        start_values_batch: Sequence[Sequence[int]],
        *legacy_count,
        count: Optional[int] = None,
        include_rows: bool = True,
    ) -> Union[List[List[Tuple]], List[List[bytes]]]:
        """Batched range queries: ``count`` results per start key.

        Result lists align with the input order; ``include_rows=False``
        returns index keys instead of rows, as in :meth:`scan`.
        """
        count = self._scan_count(legacy_count, count)
        secondary = self.indexes[index_name]
        if secondary.parked:
            self.db.advisor.unpark(self, secondary)
        with self.db.trace_op(f"db.scan_batch[{index_name}]"):
            starts = [secondary.key_of_values(v) for v in start_values_batch]
            batches = secondary.executor.scan_batch(starts, count)
            if include_rows:
                out = [
                    [self.table.row(tid) for _, tid in items]
                    for items in batches
                ]
            else:
                out = [[key for key, _ in items] for items in batches]
        advisor = self.db.advisor
        if advisor is not None:
            advisor.observe_scan_batch(
                self.schema.name, secondary.name, starts, count
            )
        self.db._tick(len(starts))
        return out

    @staticmethod
    def _scan_count(legacy_count: tuple, count: Optional[int]) -> int:
        """Resolve keyword ``count`` vs. the deprecated positional form."""
        if legacy_count:
            if len(legacy_count) > 1 or count is not None:
                raise TypeError("scan takes a single count, as a keyword")
            warnings.warn(
                "passing the scan count positionally is deprecated; "
                "use count=<n>",
                DeprecationWarning,
                stacklevel=3,
            )
            return legacy_count[0]
        if count is None:
            raise TypeError("scan requires count=<n>")
        return count

    def __len__(self) -> int:
        return len(self.table)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def memory_report(self) -> Dict[str, float]:
        """Dataset vs. index memory — the section 1 overhead numbers."""
        index_bytes = {
            name: s.index_bytes for name, s in self.indexes.items()
        }
        total_index = sum(index_bytes.values())
        dataset = self.table.dataset_bytes
        total = dataset + total_index
        return {
            "dataset_bytes": dataset,
            "index_bytes_total": total_index,
            "index_fraction_of_memory": total_index / total if total else 0.0,
            **{f"index_bytes[{n}]": b for n, b in index_bytes.items()},
        }


class Database:
    """A set of tables sharing one cost account and allocator.

    Every database owns an :class:`~repro.obs.Observer` subscribed to
    the global event bus: with observability enabled
    (``repro.obs.set_enabled(True)``) elasticity and batch events are
    folded into its metrics registry and bounded event log, surfaced via
    :meth:`metrics_snapshot` / :meth:`event_log`.  With it disabled (the
    default) no events are published, so the observer stays empty and
    the hot paths are untouched.

    A :class:`~repro.wal.WalConfig` as ``wal`` attaches the durable
    write pipeline: every :class:`~repro.db.write.WriteBatch` commit
    appends logical redo records to a per-shard group-committed
    write-ahead log before touching volatile state, and
    :func:`repro.wal.recover_database` rebuilds the database from the
    snapshot (:meth:`snapshot`) plus the log's durable prefix after a
    crash.  ``wal=None`` (the default) keeps the write path
    byte-identical to a log-less database.
    """

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        wal: Optional[WalConfig] = None,
    ) -> None:
        self.cost = cost_model if cost_model is not None else CostModel()
        self.allocator = TrackingAllocator(cost_model=self.cost)
        self.tables: Dict[str, DBTable] = {}
        self.observer = Observer()
        self.arbiter: Optional[BudgetArbiter] = None
        #: The self-tuning advisor, set by :meth:`enable_self_tuning`
        #: (None = every tuning hook in the hot paths is a single
        #: attribute check, and feature-off runs stay byte-identical).
        self.advisor = None
        self.wal: Optional[WriteAheadLog] = (
            WriteAheadLog(wal, self.cost) if wal is not None else None
        )
        #: Recorded schema history (create_table / create_index /
        #: enable_budget_arbiter / enable_self_tuning), replayed
        #: verbatim by crash recovery.
        self._ddl: List[tuple] = []

    def create_table(self, schema: RowSchema) -> DBTable:
        if schema.name in self.tables:
            raise ValueError(f"table {schema.name!r} already exists")
        table = DBTable(self, schema)
        self.tables[schema.name] = table
        self._ddl.append(("create_table", schema))
        return table

    # ------------------------------------------------------------------
    # Transactional writes and durability
    # ------------------------------------------------------------------
    def begin_batch(self) -> WriteBatch:
        """Open a :class:`~repro.db.write.WriteBatch` — the single
        transactional write entry point.  Stage inserts and deletes
        across any of this database's tables, then ``commit()`` (or
        exit the ``with`` block) to run the write pipeline; with a
        write-ahead log configured the whole batch shares one append
        phase and one group-commit schedule."""
        return WriteBatch(self)

    def snapshot(self) -> int:
        """Checkpoint: flush the log and store every table's image.

        Forces the pending log suffix durable (charging its fsync
        barriers), then copies each table's row store — including dead
        slots and the free-tid stack, so post-snapshot replay re-derives
        exact tuple ids — onto the modeled stable media, charging
        ``copy_line`` for the live bytes.  Recovery then replays only
        records above the returned snapshot lsn.  Requires a
        write-ahead log (:class:`~repro.errors.WalError` otherwise).
        """
        if self.wal is None:
            raise WalError("snapshot requires a write-ahead log")
        self.wal.flush()
        tables: Dict[str, TableSnapshot] = {}
        for name, dbtable in self.tables.items():
            store = dbtable.table
            tables[name] = TableSnapshot(
                rows=list(store._rows),
                free_tids=list(store._free_tids),
                live_rows=len(store),
            )
            self.cost.copy_bytes(len(store) * store.row_bytes)
        snapshot_lsn = self.wal.next_lsn - 1
        self.wal.install_snapshot(tables, snapshot_lsn)
        return snapshot_lsn

    # ------------------------------------------------------------------
    # Global budget arbitration
    # ------------------------------------------------------------------
    def enable_budget_arbiter(
        self, total_bytes: int, **arbiter_kwargs
    ) -> BudgetArbiter:
        """Put all elastic indexes under one dynamically-arbitrated bound.

        Creates the database's :class:`~repro.engine.BudgetArbiter` and
        enrolls every already-created elastic index (each shard
        individually, for sharded indexes); indexes created afterwards
        enroll automatically.  Enrollment does not move budget — shards
        keep their creation-time bounds until the first rebalance, which
        runs every ``interval_ops`` database operations (or on an
        explicit :meth:`rebalance_budget` call).
        """
        if self.arbiter is not None:
            raise InvalidBudgetError("budget arbiter already enabled")
        self.arbiter = BudgetArbiter(total_bytes, **arbiter_kwargs)
        self._ddl.append((
            "enable_budget_arbiter", total_bytes, dict(arbiter_kwargs)
        ))
        for table_name, table in self.tables.items():
            for index_name, secondary in table.indexes.items():
                self._register_with_arbiter(
                    table_name, index_name, secondary.index
                )
        return self.arbiter

    def enable_self_tuning(self, config=None):
        """Close the tuning loop: create the self-tuning advisor.

        The advisor (:class:`~repro.tuning.SelfTuningAdvisor`) rides the
        budget arbiter's tick — it registers an interval hook on the
        arbiter rather than counting operations itself, so advisor
        actions and cache adaptation share one op-boundary clock and
        enabling self-tuning never advances the arbiter's ``_ops_since``
        twice per database operation.  Requires
        :meth:`enable_budget_arbiter` first
        (:class:`~repro.errors.TuningConfigError` otherwise; likewise
        when self-tuning is already enabled).  ``config`` defaults to
        ``TuningConfig()``.
        """
        from repro.tuning import SelfTuningAdvisor, TuningConfig

        if self.advisor is not None:
            raise TuningConfigError("self-tuning already enabled")
        if self.arbiter is None:
            raise TuningConfigError(
                "self-tuning rides the budget arbiter's op clock; call "
                "enable_budget_arbiter first"
            )
        if config is None:
            config = TuningConfig()
        config.validate()
        self.advisor = SelfTuningAdvisor(self, config)
        self.arbiter.add_interval_hook(self.advisor.on_interval)
        self._ddl.append(("enable_self_tuning", config))
        return self.advisor

    def rebalance_budget(self, reason: str = "manual") -> bool:
        """Run one arbitration round now; True if budget moved."""
        if self.arbiter is None:
            raise InvalidBudgetError("no budget arbiter enabled")
        return self.arbiter.rebalance(reason=reason)

    def _register_with_arbiter(
        self, table_name: str, index_name: str, index
    ) -> None:
        """Enroll an index's elasticity controller(s), if any."""
        if self.arbiter is None:
            return
        if isinstance(index, ReplicaSet):
            # The cluster-global bound: every replica's controllers (and
            # caches) enroll under the database's one arbitrated total,
            # so budget moves across replica boundaries like it moves
            # across shard boundaries.
            for replica in index.replicas:
                if isinstance(replica.index, ShardedIndex):
                    self._register_with_arbiter(
                        table_name, index_name, replica.index
                    )
                    continue
                controller = getattr(replica.index, "controller", None)
                if controller is not None:
                    self.arbiter.register(replica.name, controller)
                    cache = getattr(replica.index, "cache", None)
                    if cache is not None:
                        self.arbiter.register_cache(replica.name, cache)
            return
        if isinstance(index, ShardedIndex):
            for shard in index.shards:
                if shard.controller is not None:
                    self.arbiter.register(shard.name, shard.controller)
                    if shard.cache is not None:
                        self.arbiter.register_cache(shard.name, shard.cache)
            return
        controller = getattr(index, "controller", None)
        if controller is not None:
            label = f"{table_name}.{index_name}"
            self.arbiter.register(label, controller)
            cache = getattr(index, "cache", None)
            if cache is not None:
                self.arbiter.register_cache(label, cache)

    def _tick(self, ops: int) -> None:
        """Operation-boundary hook: drives periodic arbitration.

        Every read path and — via :meth:`WriteBatch.commit
        <repro.db.write.WriteBatch.commit>` — every write path, batched
        or scalar, WAL or not, ticks here, so the budget arbiter sees
        one op count per operation actually executed.
        """
        if self.arbiter is not None:
            self.arbiter.tick(ops)

    # ------------------------------------------------------------------
    # Observability surface
    # ------------------------------------------------------------------
    def trace_op(self, op: str):
        """Cost-attributed span over one operation (no-op when obs off)."""
        return self.observer.tracer.trace_op(self.cost, op)

    def metrics_snapshot(self) -> str:
        """Prometheus exposition text of the observer's registry."""
        return self.observer.metrics_snapshot()

    def event_log(self, kind: Optional[str] = None) -> List[Event]:
        """Events retained by the observer, oldest first."""
        return self.observer.event_log(kind)

    def write_event_log(self, path) -> int:
        """Dump the observer's events as JSON-lines; returns line count."""
        return self.observer.write_event_log(path)

    @staticmethod
    def split_budget(total_bytes: int, shares: Sequence[float]) -> List[int]:
        """Divide an index memory budget across indexes by weight.

        Largest-remainder apportionment: the integer parts are handed
        out first and the leftover bytes (up to ``len(shares) - 1``) go
        to the largest fractional remainders, so the result always sums
        to exactly ``total_bytes``.  Ties break toward earlier shares.
        """
        return largest_remainder(total_bytes, shares)
