"""repro.api — the single public entry point.

Everything an application needs to build tables, indexes, and sharded
engines lives here, one import away::

    from repro.api import Database, RowSchema

    db = Database()
    logs = db.create_table(RowSchema("logs", ("ts", "obj"), (8, 8)))
    logs.create_index("by_ts", ("ts",), kind="elastic",
                      size_bound_bytes=1 << 20, shards=4, parallel=True)

The facade groups the stable surface of the layered packages:

* **database** — :class:`Database`, :class:`DBTable`,
  :class:`SecondaryIndex`, :class:`RowSchema`, :class:`Table`;
* **indexes** — :class:`ElasticBPlusTree` + :class:`ElasticConfig` (the
  paper's elastic B+-tree), :class:`BPlusTree` (the STX-style
  baseline), plus the name registry (:func:`build_index`,
  :func:`register_index`, :func:`available_indexes`) for everything
  else;
* **leaf kinds** — the pluggable conversion-target registry
  (:class:`LeafKindRegistry`, :func:`register_leaf_kind`,
  :func:`leaf_kind`, :func:`available_leaf_kinds`) and
  :class:`LearnedLeaf`, the FITing-Tree style learned kind
  (``ElasticConfig(leaf_kinds=("standard", "compact", "learned"))``);
* **engine** — :class:`ShardedIndex` / :func:`build_sharded_index`,
  partitioners, :class:`BudgetArbiter`, and the scatter/gather
  executors (:class:`SerialShardExecutor`,
  :class:`ParallelShardExecutor`, :func:`make_executor`,
  :class:`FaultPlan`);
* **cluster** — divergent replica sets above the engine tier
  (``create_index(..., replicas=ReplicaConfig(...))``):
  :class:`ReplicaConfig` / :class:`ReplicaProfile` /
  :func:`preset_profile` describe the per-replica configurations,
  :class:`ReplicaSet` / :func:`build_replica_set` materialize them,
  :class:`ClusterRouter` routes query classes, and
  :class:`ReplicaAdvisor` re-scores and rebuilds replicas;
* **execution** — :class:`BatchExecutor` for amortized operation
  batches over one index;
* **durability** — the transactional write surface and the write-ahead
  log behind it: :meth:`Database.begin_batch` yields a
  :class:`WriteBatch`; ``Database(wal=WalConfig(...))`` attaches the
  per-shard group-committed log; :func:`recover_database` /
  :class:`RecoveryReport` / :func:`state_digest` rebuild and verify
  after a :class:`CrashError` raised at a scripted
  ``FaultPlan.kill(...)`` point;
* **caching** — :class:`CacheConfig` for budget-aware adaptive
  caching (``create_index(..., cache=CacheConfig())``), plus the
  :class:`IndexCache` / :class:`CacheStats` / :class:`CacheReport`
  introspection surface;
* **tuning** — the online self-tuning advisor
  (``db.enable_self_tuning(TuningConfig(...))``): closed-loop what-if
  tuning riding the budget arbiter's tick — :class:`TuningConfig`
  configures the loop, :class:`SelfTuningAdvisor` is the advisor the
  database exposes as ``db.advisor``;
* **accounting** — :class:`CostModel`, :class:`TrackingAllocator`,
  :class:`MemoryBudget`, :class:`PressureState`;
* **errors** — the typed :mod:`repro.errors` hierarchy (every class
  still subclasses :class:`ValueError`);
* **observability** — the :mod:`repro.obs` module itself, re-exported
  as :data:`obs` (``api.obs.set_enabled(True)``, ``api.obs.Observer()``).

Deeper modules (``repro.bench``, ``repro.workloads``, ``repro.mcas``,
per-structure baselines) remain importable directly; they are research
drivers, not application surface.
"""

from __future__ import annotations

from repro import obs
from repro.btree import BPlusTree
from repro.btree.kinds import (
    LeafKindRegistry,
    LeafKindSpec,
    available_leaf_kinds,
    leaf_kind,
    register_leaf_kind,
)
from repro.cache import CacheConfig, CacheReport, CacheStats, IndexCache
from repro.cluster import (
    ClusterRouter,
    Replica,
    ReplicaAdvisor,
    ReplicaConfig,
    ReplicaProfile,
    ReplicaSet,
    build_replica_set,
    preset_profile,
)
from repro.core.config import ElasticConfig
from repro.core.elastic_btree import ElasticBPlusTree
from repro.db.database import Database, DBTable, SecondaryIndex
from repro.db.write import WriteBatch
from repro.engine import (
    BudgetArbiter,
    FaultPlan,
    HashPartitioner,
    IndexShard,
    ParallelShardExecutor,
    Partitioner,
    RangePartitioner,
    SerialShardExecutor,
    ShardExecutor,
    ShardTask,
    ShardedIndex,
    build_sharded_index,
    make_executor,
    make_partitioner,
)
from repro.errors import (
    CacheConfigError,
    ExecutorSaturatedError,
    IndexExistsError,
    InvalidBudgetError,
    LeafKindError,
    RecoveryError,
    ReplicaConfigError,
    ReproError,
    ShardConfigError,
    ShardConflictError,
    TuningConfigError,
    WalError,
)
from repro.exec import BatchExecutor
from repro.learned import LearnedLeaf
from repro.keys.encoding import encode_f64, encode_i64, encode_str, encode_u64
from repro.memory.allocator import TrackingAllocator
from repro.memory.budget import MemoryBudget, PressureState
from repro.memory.cost_model import CostModel
from repro.registry import (
    available_indexes,
    build_index,
    register_index,
)
from repro.table.table import RowSchema, Table
from repro.tuning import SelfTuningAdvisor, TuningConfig
from repro.wal import (
    CrashError,
    RecoveryReport,
    WalConfig,
    WalRecord,
    WriteAheadLog,
    recover_database,
    state_digest,
)

__all__ = [
    # database
    "Database",
    "DBTable",
    "SecondaryIndex",
    "RowSchema",
    "Table",
    # indexes
    "BPlusTree",
    "ElasticBPlusTree",
    "ElasticConfig",
    "available_indexes",
    "build_index",
    "register_index",
    # leaf kinds
    "LeafKindRegistry",
    "LeafKindSpec",
    "LearnedLeaf",
    "available_leaf_kinds",
    "leaf_kind",
    "register_leaf_kind",
    # engine
    "BudgetArbiter",
    "FaultPlan",
    "HashPartitioner",
    "IndexShard",
    "ParallelShardExecutor",
    "Partitioner",
    "RangePartitioner",
    "SerialShardExecutor",
    "ShardExecutor",
    "ShardTask",
    "ShardedIndex",
    "build_sharded_index",
    "make_executor",
    "make_partitioner",
    # cluster
    "ClusterRouter",
    "Replica",
    "ReplicaAdvisor",
    "ReplicaConfig",
    "ReplicaProfile",
    "ReplicaSet",
    "build_replica_set",
    "preset_profile",
    # execution
    "BatchExecutor",
    # durability
    "CrashError",
    "RecoveryReport",
    "WalConfig",
    "WalRecord",
    "WriteAheadLog",
    "WriteBatch",
    "recover_database",
    "state_digest",
    # caching
    "CacheConfig",
    "CacheReport",
    "CacheStats",
    "IndexCache",
    # tuning
    "SelfTuningAdvisor",
    "TuningConfig",
    # accounting
    "CostModel",
    "MemoryBudget",
    "PressureState",
    "TrackingAllocator",
    # keys
    "encode_f64",
    "encode_i64",
    "encode_str",
    "encode_u64",
    # errors
    "CacheConfigError",
    "ExecutorSaturatedError",
    "IndexExistsError",
    "InvalidBudgetError",
    "LeafKindError",
    "RecoveryError",
    "ReplicaConfigError",
    "ReproError",
    "ShardConfigError",
    "ShardConflictError",
    "TuningConfigError",
    "WalError",
    # observability
    "obs",
]
