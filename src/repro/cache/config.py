"""Configuration for the budget-aware adaptive cache."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import CacheConfigError


@dataclass(frozen=True)
class CacheConfig:
    """Knobs of one :class:`~repro.cache.IndexCache`.

    The cache is another point on the paper's space/efficiency curve, so
    its budget is expressed in the same currency as the index's soft
    bound: bytes charged to the shard's tracking allocator.  A
    :class:`~repro.engine.arbiter.BudgetArbiter` may later move the
    budget (see ``adaptive``); the values here are the starting point
    and the guard rails.

    Args:
        budget_bytes: Initial cache budget (sketch + both tiers).
        row_fraction: Share of the usable budget given to the hot-row
            tier; the remainder funds the leaf-descent tier.
        sketch_width: Admission-sketch counters per row (rounded up to a
            power of two).
        sketch_depth: Admission-sketch rows.
        sketch_sample_size: Recordings between sketch aging passes.
        min_budget_bytes: Floor the arbiter never shrinks the cache
            below (mirrors the arbiter's per-shard bound floor).
        max_bound_fraction: Ceiling on the fraction of a shard's soft
            bound the arbiter may hand to the cache.
        demand_gain: Multiplier mapping the observed window hit rate to
            the arbiter's target bound fraction (target =
            ``bound * min(max_bound_fraction, hit_rate * demand_gain)``).
        adaptive: When False, the arbiter leaves the budget alone.
    """

    budget_bytes: int = 64 * 1024
    row_fraction: float = 0.75
    sketch_width: int = 1024
    sketch_depth: int = 4
    sketch_sample_size: int = 8192
    min_budget_bytes: int = 4096
    max_bound_fraction: float = 0.5
    demand_gain: float = 2.0
    adaptive: bool = True

    def validate(self, size_bound_bytes: Optional[int] = None) -> None:
        """Raise :class:`~repro.errors.CacheConfigError` if unusable."""
        if self.budget_bytes <= 0:
            raise CacheConfigError(
                f"cache budget must be positive, got {self.budget_bytes}"
            )
        if not 0.0 < self.row_fraction < 1.0:
            raise CacheConfigError(
                f"row_fraction must be in (0, 1), got {self.row_fraction}"
            )
        if self.sketch_width < 2 or self.sketch_depth < 1:
            raise CacheConfigError(
                "sketch dimensions must be positive "
                f"(width={self.sketch_width}, depth={self.sketch_depth})"
            )
        if self.sketch_sample_size < 1:
            raise CacheConfigError(
                f"sketch_sample_size must be positive, "
                f"got {self.sketch_sample_size}"
            )
        if self.min_budget_bytes < 1:
            raise CacheConfigError(
                f"min_budget_bytes must be positive (the floor must at "
                f"least hold the sketch), got {self.min_budget_bytes}"
            )
        if not 0.0 < self.max_bound_fraction <= 1.0:
            raise CacheConfigError(
                f"max_bound_fraction must be in (0, 1], "
                f"got {self.max_bound_fraction}"
            )
        if self.demand_gain <= 0:
            raise CacheConfigError(
                f"demand_gain must be positive, got {self.demand_gain}"
            )
        if size_bound_bytes is not None and (
            self.budget_bytes >= size_bound_bytes
        ):
            raise CacheConfigError(
                f"cache budget ({self.budget_bytes} B) must stay below "
                f"the index soft bound ({size_bound_bytes} B) it competes "
                "under"
            )
