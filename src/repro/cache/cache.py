"""The budget-aware adaptive read cache (hot rows + leaf descents).

Two tiers sit in front of a B+-tree family index's read path:

* The **hot-row tier** memoizes ``key -> tuple id`` for keys that were
  resolved through *compact* leaves — exactly the lookups that pay the
  paper's indirect ``key_load`` penalty.  A hit answers the query for
  one ``cache_hit`` unit (weight 0.1) instead of a full descent plus a
  random table load.  Entries are invalidated per key on insert/remove
  (a tuple id changes only through those), so the tier survives
  structural changes untouched.
* The **leaf-descent tier** memoizes the fence-key interval
  ``[lo, hi) -> leaf`` of recent descents, so a repeated point lookup
  skips the inner-node walk and pays one ``cache_hit`` unit plus the
  leaf's own search cost.  Any structural change (split, merge,
  conversion, expansion, bulk load) bumps the tree's
  ``structural_epoch``; the tier lazily clears itself wholesale when
  its epoch snapshot is stale, so a stale leaf can never serve a read.

Admission is TinyLFU: every probe records the key in a deterministic
frequency sketch (:mod:`repro.cache.sketch`), and when the row tier is
full a candidate only displaces the LRU victim if its estimated
frequency is strictly higher.

Space is real: the sketch and both tiers charge their modeled bytes to
the owning tree's :class:`~repro.memory.allocator.TrackingAllocator`
under the ``"cache"`` category.  Because an elastic tree's
``index_bytes`` sums every category except the table, the cache
*competes with fat leaves for the soft memory bound* — growing the
cache pushes the elasticity controller toward compacting leaves, and
vice versa.  Entry slabs are allocated 32 entries at a time so the
allocator's per-call cost stays amortized.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro import obs
from repro.cache.config import CacheConfig
from repro.cache.sketch import FrequencySketch
from repro.errors import CacheConfigError
from repro.obs import CacheEvent

#: Entries reserved per allocator call (amortizes the per-call alloc
#: cost the tracking allocator charges).
_SLAB_ENTRIES = 32

#: Sentinel lo-key for the leftmost leaf's interval (compares below
#: every real key, which are at least one byte wide).
_NEG_INF = b""

#: Modeled per-entry overhead beyond the key payload: an 8-byte cached
#: hash, an 8-byte value/pointer slot, and two 8-byte LRU links.
_ENTRY_OVERHEAD = 32


@dataclass
class CacheStats:
    """Lifetime counters of one :class:`IndexCache`."""

    row_hits: int = 0
    row_misses: int = 0
    desc_hits: int = 0
    desc_misses: int = 0
    row_admits: int = 0
    desc_admits: int = 0
    row_rejects: int = 0
    row_evictions: int = 0
    desc_evictions: int = 0
    row_invalidations: int = 0
    desc_invalidations: int = 0
    epoch_clears: int = 0

    @property
    def lookups(self) -> int:
        """Point lookups that consulted the cache (row-tier probes)."""
        return self.row_hits + self.row_misses

    @property
    def hits(self) -> int:
        """Lookups answered (row tier) or shortcut (descent tier)."""
        return self.row_hits + self.desc_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of cache-consulting lookups that hit either tier."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


@dataclass
class CacheReport:
    """Point-in-time snapshot of one cache (bench/inspect reporting)."""

    name: str = ""
    budget_bytes: int = 0
    bytes_used: int = 0
    row_entries: int = 0
    row_capacity: int = 0
    desc_entries: int = 0
    desc_capacity: int = 0
    hit_rate: float = 0.0
    stats: CacheStats = field(default_factory=CacheStats)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "budget_bytes": self.budget_bytes,
            "bytes_used": self.bytes_used,
            "row_entries": self.row_entries,
            "row_capacity": self.row_capacity,
            "desc_entries": self.desc_entries,
            "desc_capacity": self.desc_capacity,
            "hit_rate": self.hit_rate,
            "hits": self.stats.hits,
            "lookups": self.stats.lookups,
        }


class IndexCache:
    """One index's (or shard's) two-tier adaptive cache.

    Construct with a validated :class:`~repro.cache.config.CacheConfig`,
    then attach to a tree via ``tree.attach_cache(cache)`` — attachment
    binds the cache to the tree's allocator and cost model and charges
    the sketch's footprint.  All probes charge one ``cache_hit`` cost
    unit each, hit or miss, so cached execution stays honestly priced.
    """

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        config.validate()
        self.config = config
        self.name = name
        self._sketch = FrequencySketch(
            width=config.sketch_width,
            depth=config.sketch_depth,
            sample_size=config.sketch_sample_size,
        )
        self.stats = CacheStats()
        self._budget_bytes = config.budget_bytes
        self._allocator = None
        self._cost = None
        self._key_width = 0
        self._row_entry_bytes = 0
        self._desc_entry_bytes = 0
        self._row_capacity = 0
        self._desc_capacity = 0
        #: key -> tuple id, LRU order (oldest first).
        self._rows: "OrderedDict[bytes, int]" = OrderedDict()
        #: lo fence key -> (hi fence key or None, leaf), LRU order.
        self._desc: "OrderedDict[bytes, Tuple[Optional[bytes], object]]" = (
            OrderedDict()
        )
        #: Sorted lo fence keys for interval probes.
        self._desc_keys: list = []
        self._desc_epoch = 0
        self._row_reserved = 0
        self._desc_reserved = 0
        self._cache_bytes = 0
        self._window_probes = 0
        self._window_hits = 0

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def bind(self, allocator, cost_model, key_width: int) -> None:
        """Bind to the owning tree's accounting (idempotent misuse guard).

        Charges the admission sketch's footprint to the allocator's
        ``"cache"`` category and sizes both tiers from the budget.
        """
        if self._allocator is not None:
            raise CacheConfigError(
                f"cache {self.name!r} is already attached to an index"
            )
        if key_width < 1:
            raise CacheConfigError(f"key width must be positive: {key_width}")
        self._allocator = allocator
        self._cost = cost_model
        self._key_width = key_width
        self._row_entry_bytes = key_width + _ENTRY_OVERHEAD
        self._desc_entry_bytes = 2 * key_width + _ENTRY_OVERHEAD
        self._cache_bytes += allocator.allocate(
            self._sketch.size_bytes, "cache"
        )
        self._recompute_capacities()

    @property
    def is_bound(self) -> bool:
        return self._allocator is not None

    # ------------------------------------------------------------------
    # Probes (each charges one ``cache_hit`` unit, hit or miss)
    # ------------------------------------------------------------------
    def probe_row(self, key: bytes) -> Optional[int]:
        """Hot-row tier probe: cached tuple id for ``key``, or None."""
        self._cost.cache_hits(1)
        self._window_probes += 1
        self._sketch.record(key)
        rows = self._rows
        tid = rows.get(key)
        if tid is not None:
            rows.move_to_end(key)
            self.stats.row_hits += 1
            self._window_hits += 1
            if obs.is_enabled():
                obs.emit(CacheEvent(name=self.name, action="hit", tier="row"))
            return tid
        self.stats.row_misses += 1
        if obs.is_enabled():
            obs.emit(CacheEvent(name=self.name, action="miss", tier="row"))
        return None

    def probe_leaf(self, key: bytes, epoch: int):
        """Descent tier probe: the leaf covering ``key``, or None.

        ``epoch`` is the tree's current ``structural_epoch``; a mismatch
        with the tier's snapshot clears the whole tier first, so entries
        admitted before any split/merge/conversion can never be served.
        """
        self._cost.cache_hits(1)
        if epoch != self._desc_epoch:
            self._clear_descent(epoch)
        keys = self._desc_keys
        i = bisect_right(keys, key) - 1
        if i >= 0:
            lo = keys[i]
            hi, leaf = self._desc[lo]
            if hi is None or key < hi:
                self._desc.move_to_end(lo)
                self.stats.desc_hits += 1
                self._window_hits += 1
                if obs.is_enabled():
                    obs.emit(CacheEvent(
                        name=self.name, action="hit", tier="descent",
                    ))
                return leaf
        self.stats.desc_misses += 1
        if obs.is_enabled():
            obs.emit(CacheEvent(name=self.name, action="miss", tier="descent"))
        return None

    # ------------------------------------------------------------------
    # Admission (TinyLFU on the row tier, plain LRU on the descent tier)
    # ------------------------------------------------------------------
    def admit_row(self, key: bytes, tid: int) -> None:
        """Offer ``key -> tid`` to the hot-row tier."""
        rows = self._rows
        if key in rows:
            rows[key] = tid
            rows.move_to_end(key)
            return
        if self._row_capacity < 1:
            self.stats.row_rejects += 1
            return
        if len(rows) >= self._row_capacity:
            victim = next(iter(rows))
            sketch = self._sketch
            if sketch.estimate(key) <= sketch.estimate(victim):
                self.stats.row_rejects += 1
                return
            del rows[victim]
            self.stats.row_evictions += 1
            if obs.is_enabled():
                obs.emit(CacheEvent(
                    name=self.name, action="evict", tier="row",
                ))
        rows[key] = tid
        self.stats.row_admits += 1
        self._reserve("row")
        if obs.is_enabled():
            obs.emit(CacheEvent(
                name=self.name, action="admit", tier="row",
                entries=len(rows),
            ))

    def admit_leaf(
        self,
        lo: Optional[bytes],
        hi: Optional[bytes],
        leaf,
        epoch: int,
    ) -> None:
        """Record a descent's fence interval ``[lo, hi) -> leaf``.

        ``epoch`` must be the tree epoch captured *before* the descent:
        if the structure changed since, the entry lands under the old
        snapshot and the next probe's epoch check discards it.
        """
        if self._desc_capacity < 1:
            return
        if epoch != self._desc_epoch:
            self._clear_descent(epoch)
        lo_key = lo if lo is not None else _NEG_INF
        desc = self._desc
        if lo_key in desc:
            desc[lo_key] = (hi, leaf)
            desc.move_to_end(lo_key)
            return
        if len(desc) >= self._desc_capacity:
            victim, _ = desc.popitem(last=False)
            del self._desc_keys[bisect_left(self._desc_keys, victim)]
            self.stats.desc_evictions += 1
            if obs.is_enabled():
                obs.emit(CacheEvent(
                    name=self.name, action="evict", tier="descent",
                ))
        desc[lo_key] = (hi, leaf)
        insort(self._desc_keys, lo_key)
        self.stats.desc_admits += 1
        self._reserve("descent")
        if obs.is_enabled():
            obs.emit(CacheEvent(
                name=self.name, action="admit", tier="descent",
                entries=len(desc),
            ))

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate_row(self, key: bytes) -> None:
        """Drop a hot-row entry before its tuple id changes (write path)."""
        if self._rows.pop(key, None) is not None:
            self.stats.row_invalidations += 1
            if obs.is_enabled():
                obs.emit(CacheEvent(
                    name=self.name, action="invalidate", tier="row",
                ))

    def invalidate_key(self, key: bytes) -> None:
        """Drop every entry that could serve ``key``: the hot-row entry
        and the descent interval covering it.

        Used by the cluster router to price ``point_cold`` what-if
        probes on an un-resident key (see :mod:`repro.cluster.router`):
        the sampled key was just served — and therefore just admitted —
        so without this the probe would measure residency the key will
        not have when real cold traffic arrives.
        """
        self.invalidate_row(key)
        keys = self._desc_keys
        i = bisect_right(keys, key) - 1
        if i >= 0:
            lo = keys[i]
            hi, _leaf = self._desc[lo]
            if hi is None or key < hi:
                del self._desc[lo]
                del keys[i]
                self.stats.desc_invalidations += 1
                if obs.is_enabled():
                    obs.emit(CacheEvent(
                        name=self.name, action="invalidate", tier="descent",
                    ))

    def _clear_descent(self, epoch: int) -> None:
        if self._desc:
            self.stats.desc_invalidations += len(self._desc)
            self.stats.epoch_clears += 1
            if obs.is_enabled():
                obs.emit(CacheEvent(
                    name=self.name, action="invalidate", tier="descent",
                    entries=len(self._desc),
                ))
            self._desc.clear()
            self._desc_keys.clear()
        self._desc_epoch = epoch

    def clear(self) -> None:
        """Drop every entry (bulk load / rebuild); keeps reservations."""
        if self._rows:
            self.stats.row_invalidations += len(self._rows)
            if obs.is_enabled():
                obs.emit(CacheEvent(
                    name=self.name, action="invalidate", tier="row",
                    entries=len(self._rows),
                ))
            self._rows.clear()
        self._clear_descent(self._desc_epoch)
        self._sketch.clear()

    # ------------------------------------------------------------------
    # Budget (what the arbiter moves)
    # ------------------------------------------------------------------
    @property
    def budget_bytes(self) -> int:
        return self._budget_bytes

    @property
    def bytes_used(self) -> int:
        """Bytes currently charged to the allocator's ``cache`` category."""
        return self._cache_bytes

    def set_budget(self, budget_bytes: int) -> None:
        """Resize the cache budget; evicts LRU-first down to capacity."""
        self._budget_bytes = max(
            int(budget_bytes), self.config.min_budget_bytes
        )
        self._recompute_capacities()
        rows = self._rows
        while len(rows) > self._row_capacity:
            rows.popitem(last=False)
            self.stats.row_evictions += 1
        desc = self._desc
        while len(desc) > self._desc_capacity:
            victim, _ = desc.popitem(last=False)
            del self._desc_keys[bisect_left(self._desc_keys, victim)]
            self.stats.desc_evictions += 1
        self._trim_reservations()

    def _recompute_capacities(self) -> None:
        """Size the tiers so their *charged* bytes fit the budget.

        Capacities are quantized to whole slabs at the allocator's
        rounded slab size, so ``bytes_used`` can never exceed
        ``budget_bytes`` no matter how size-class rounding lands.
        """
        if self._allocator is None:
            return
        sketch_bytes = self._allocator.charged_size(self._sketch.size_bytes)
        usable = max(0, self._budget_bytes - sketch_bytes)
        row_budget = int(usable * self.config.row_fraction)
        self._row_capacity = self._fit(row_budget, self._row_entry_bytes)
        self._desc_capacity = self._fit(
            usable - row_budget, self._desc_entry_bytes
        )

    def _fit(self, tier_budget: int, entry_bytes: int) -> int:
        """Largest slab-aligned entry count whose charge fits the budget."""
        slab_charge = self._allocator.charged_size(
            _SLAB_ENTRIES * entry_bytes
        )
        return (tier_budget // slab_charge) * _SLAB_ENTRIES

    def _reserve(self, tier: str) -> None:
        """Grow the tier's slab reservation to cover its entry count."""
        if tier == "row":
            if len(self._rows) > self._row_reserved:
                self._cache_bytes += self._allocator.allocate(
                    _SLAB_ENTRIES * self._row_entry_bytes, "cache"
                )
                self._row_reserved += _SLAB_ENTRIES
        else:
            if len(self._desc) > self._desc_reserved:
                self._cache_bytes += self._allocator.allocate(
                    _SLAB_ENTRIES * self._desc_entry_bytes, "cache"
                )
                self._desc_reserved += _SLAB_ENTRIES

    def _trim_reservations(self) -> None:
        """Release slabs beyond the current entry counts (budget shrink)."""
        row_target = -(-len(self._rows) // _SLAB_ENTRIES) * _SLAB_ENTRIES
        while self._row_reserved > row_target:
            self._cache_bytes -= self._allocator.free(
                _SLAB_ENTRIES * self._row_entry_bytes, "cache"
            )
            self._row_reserved -= _SLAB_ENTRIES
        desc_target = -(-len(self._desc) // _SLAB_ENTRIES) * _SLAB_ENTRIES
        while self._desc_reserved > desc_target:
            self._cache_bytes -= self._allocator.free(
                _SLAB_ENTRIES * self._desc_entry_bytes, "cache"
            )
            self._desc_reserved -= _SLAB_ENTRIES

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def take_window(self) -> Tuple[int, int]:
        """(probes, hits) since the last call; resets the window.

        The arbiter samples this at each evaluation to derive the
        hit-rate-weighted demand for cache budget.
        """
        probes, hits = self._window_probes, self._window_hits
        self._window_probes = 0
        self._window_hits = 0
        return probes, hits

    @property
    def hit_rate(self) -> float:
        return self.stats.hit_rate

    def report(self) -> CacheReport:
        return CacheReport(
            name=self.name,
            budget_bytes=self._budget_bytes,
            bytes_used=self._cache_bytes,
            row_entries=len(self._rows),
            row_capacity=self._row_capacity,
            desc_entries=len(self._desc),
            desc_capacity=self._desc_capacity,
            hit_rate=self.stats.hit_rate,
            stats=self.stats,
        )

    def __repr__(self) -> str:
        return (
            f"IndexCache({self.name}, budget={self._budget_bytes}, "
            f"rows={len(self._rows)}/{self._row_capacity}, "
            f"descents={len(self._desc)}/{self._desc_capacity}, "
            f"hit_rate={self.stats.hit_rate:.3f})"
        )
