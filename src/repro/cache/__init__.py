"""repro.cache — budget-aware adaptive caching for index read paths.

A two-tier cache (hot rows + leaf descents) that charges its bytes to
the owning shard's tracking allocator, so it competes with the index's
own leaves for the elastic soft memory bound.  See
:mod:`repro.cache.cache` for the semantics and
:mod:`repro.cache.config` for the knobs.
"""

from repro.cache.cache import CacheReport, CacheStats, IndexCache
from repro.cache.config import CacheConfig
from repro.cache.sketch import FrequencySketch

__all__ = [
    "CacheConfig",
    "CacheReport",
    "CacheStats",
    "FrequencySketch",
    "IndexCache",
]
