"""Deterministic TinyLFU-style admission sketch.

TinyLFU (Einziger et al.) admits a candidate into a cache only when its
estimated access frequency beats the eviction victim's, which keeps
one-hit wonders from flushing a working set.  The frequency estimator is
a count-min sketch of 4-bit saturating counters that are periodically
halved ("aged"), so the estimate tracks *recent* popularity.

Determinism matters here: the builtin ``hash()`` over ``bytes`` is
randomized per process by ``PYTHONHASHSEED``, which would make admission
decisions — and therefore every downstream cost figure — irreproducible.
The sketch instead derives its row indexes by multiplicative hashing
over the key's integer value with fixed odd constants, so two runs of
the same workload admit exactly the same keys.
"""

from __future__ import annotations

from typing import List

#: Fixed odd 64-bit multipliers (golden-ratio / xxhash-style constants),
#: one per sketch row, so the rows probe independent positions.
_ROW_SEEDS = (
    0x9E3779B97F4A7C15,
    0xC2B2AE3D27D4EB4F,
    0x165667B19E3779F9,
    0x27D4EB2F165667C5,
    0x85EBCA77C2B2AE63,
    0xFF51AFD7ED558CCD,
)

_MASK64 = (1 << 64) - 1

#: 4-bit saturating counters (stored one per byte for simplicity; the
#: byte layout model below still accounts half a byte per counter).
_COUNTER_MAX = 15


class FrequencySketch:
    """Count-min sketch with saturating, periodically aged counters.

    Args:
        width: Counters per row; rounded up to a power of two.
        depth: Number of independent rows (at most ``len(_ROW_SEEDS)``).
        sample_size: Total recordings between aging passes; when reached,
            every counter is halved and the sample counter is halved too
            (the classic TinyLFU reset), keeping estimates recent.
    """

    def __init__(
        self, width: int = 1024, depth: int = 4, sample_size: int = 8192
    ) -> None:
        if width < 2:
            raise ValueError("sketch width must be at least 2")
        if not 1 <= depth <= len(_ROW_SEEDS):
            raise ValueError(f"sketch depth must be in [1, {len(_ROW_SEEDS)}]")
        if sample_size < 1:
            raise ValueError("sketch sample_size must be positive")
        # Round up to a power of two so indexes are a shift, not a mod.
        self.width = 1 << (width - 1).bit_length()
        self.depth = depth
        self.sample_size = sample_size
        self._shift = 64 - self.width.bit_length() + 1
        self._rows: List[bytearray] = [
            bytearray(self.width) for _ in range(depth)
        ]
        self._samples = 0

    @property
    def size_bytes(self) -> int:
        """Modeled footprint: 4 bits per counter, plus a small header."""
        return 16 + (self.width * self.depth + 1) // 2

    def _indexes(self, key: bytes) -> List[int]:
        h = int.from_bytes(key, "big")
        shift = self._shift
        return [
            ((h * _ROW_SEEDS[row]) & _MASK64) >> shift
            for row in range(self.depth)
        ]

    def record(self, key: bytes) -> None:
        """Count one access to ``key``; ages all counters periodically."""
        for row, idx in zip(self._rows, self._indexes(key)):
            if row[idx] < _COUNTER_MAX:
                row[idx] += 1
        self._samples += 1
        if self._samples >= self.sample_size:
            self._age()

    def estimate(self, key: bytes) -> int:
        """Estimated recent access count of ``key`` (min over rows)."""
        return min(
            row[idx] for row, idx in zip(self._rows, self._indexes(key))
        )

    def _age(self) -> None:
        for row in self._rows:
            for i, c in enumerate(row):
                if c:
                    row[i] = c >> 1
        self._samples >>= 1

    def clear(self) -> None:
        for row in self._rows:
            for i in range(len(row)):
                row[i] = 0
        self._samples = 0
