"""The shard layer: one index instance plus its memory identity.

An :class:`IndexShard` is the unit the engine routes operations to and
the unit the budget arbiter moves soft-bound bytes between.  Each shard
owns its index and a dedicated
:class:`~repro.memory.allocator.TrackingAllocator`, so its footprint —
and, for elastic indexes, its pressure observations — is isolated, while
all shards of a database share one
:class:`~repro.memory.cost_model.CostModel` performance ledger.
"""

from __future__ import annotations

from typing import Optional

from repro.memory.allocator import TrackingAllocator
from repro.memory.budget import PressureState


class IndexShard:
    """One partition of a sharded index: the index plus its allocator."""

    def __init__(
        self,
        shard_id: int,
        index,
        allocator: TrackingAllocator,
        name: str = "",
    ) -> None:
        self.shard_id = shard_id
        self.index = index
        self.allocator = allocator
        self.name = name or f"shard[{shard_id}]"

    # ------------------------------------------------------------------
    # Memory identity (what the arbiter reads)
    # ------------------------------------------------------------------
    @property
    def index_bytes(self) -> int:
        return self.index.index_bytes

    @property
    def controller(self):
        """The shard's elasticity controller, or None if not elastic."""
        return getattr(self.index, "controller", None)

    @property
    def is_elastic(self) -> bool:
        return self.controller is not None

    @property
    def pressure_state(self) -> Optional[PressureState]:
        controller = self.controller
        return controller.state if controller is not None else None

    @property
    def soft_bound_bytes(self) -> Optional[int]:
        controller = self.controller
        if controller is None:
            return None
        return controller.budget.soft_bound_bytes

    @property
    def cache(self):
        """The shard index's adaptive cache, or None if not attached."""
        return getattr(self.index, "cache", None)

    @property
    def cache_bytes(self) -> int:
        """Bytes held by the shard's adaptive cache."""
        return self.allocator.bytes_in("cache")

    @property
    def cache_hit_rate(self) -> float:
        cache = self.cache
        return cache.hit_rate if cache is not None else 0.0

    @property
    def compact_bytes(self) -> int:
        """Bytes held in compact-leaf structures on this shard."""
        return self.allocator.bytes_in("leaf.compact")

    @property
    def compact_fraction(self) -> float:
        """Fraction of the shard's index bytes in compact leaves."""
        total = self.index_bytes
        return self.compact_bytes / total if total else 0.0

    def __len__(self) -> int:
        return len(self.index)

    def __repr__(self) -> str:
        state = self.pressure_state
        return (
            f"IndexShard({self.name}, items={len(self)}, "
            f"bytes={self.index_bytes}"
            + (f", state={state.value}" if state is not None else "")
            + ")"
        )
