"""repro.engine — the sharded storage engine.

Three layers between the database facade and the elastic index family:

* **router** (:class:`~repro.engine.router.ShardedIndex`): hash- or
  range-partitions one logical index across N shards and
  scatter/gathers point, batch, and scan operations, presenting the
  ordinary :class:`~repro.baselines.interface.OrderedIndex` surface.
* **shard** (:class:`~repro.engine.shard.IndexShard`): one index
  instance with its own tracking allocator — and, for elastic indexes,
  its own :class:`~repro.memory.budget.MemoryBudget`.
* **arbiter** (:class:`~repro.engine.arbiter.BudgetArbiter`): owns the
  single global soft bound and periodically reapportions it across all
  registered shards of all tables by occupancy and pressure state,
  replacing the static at-creation ``Database.split_budget`` carve-up.

With one shard and no arbiter the engine is byte-identical to the
unsharded index it wraps; the layers add behaviour only when asked to.
"""

from repro.engine.arbiter import ArbiterStats, BudgetArbiter, largest_remainder
from repro.engine.partition import (
    HashPartitioner,
    PARTITIONERS,
    Partitioner,
    RangePartitioner,
    make_partitioner,
)
from repro.engine.router import ShardedIndex, build_sharded_index
from repro.engine.shard import IndexShard

__all__ = [
    "ArbiterStats",
    "BudgetArbiter",
    "HashPartitioner",
    "IndexShard",
    "PARTITIONERS",
    "Partitioner",
    "RangePartitioner",
    "ShardedIndex",
    "build_sharded_index",
    "largest_remainder",
    "make_partitioner",
]
