"""repro.engine — the sharded storage engine.

Three layers between the database facade and the elastic index family:

* **router** (:class:`~repro.engine.router.ShardedIndex`): hash- or
  range-partitions one logical index across N shards and
  scatter/gathers point, batch, and scan operations, presenting the
  ordinary :class:`~repro.baselines.interface.OrderedIndex` surface.
* **shard** (:class:`~repro.engine.shard.IndexShard`): one index
  instance with its own tracking allocator — and, for elastic indexes,
  its own :class:`~repro.memory.budget.MemoryBudget`.
* **arbiter** (:class:`~repro.engine.arbiter.BudgetArbiter`): owns the
  single global soft bound and periodically reapportions it across all
  registered shards of all tables by occupancy and pressure state,
  replacing the static at-creation ``Database.split_budget`` carve-up.

A fourth layer decides *how* a scatter executes:

* **executor** (:class:`~repro.engine.executor.ShardExecutor`): the
  scatter/gather backend behind the router.  The serial backend is
  byte-identical to visiting shards in a loop; the parallel backend
  dispatches per-shard sub-batches over a thread pool and charges
  critical-path cost, with deterministic retry/hedging/degradation
  driven by a :class:`~repro.engine.faults.FaultPlan`.

With one shard, no arbiter, and the serial executor the engine is
byte-identical to the unsharded index it wraps; the layers add
behaviour only when asked to.
"""

from repro.engine.arbiter import ArbiterStats, BudgetArbiter, largest_remainder
from repro.engine.executor import (
    ExecutorStats,
    ParallelShardExecutor,
    SerialShardExecutor,
    ShardExecutor,
    ShardTask,
    make_executor,
)
from repro.engine.faults import FaultPlan
from repro.engine.partition import (
    HashPartitioner,
    PARTITIONERS,
    Partitioner,
    RangePartitioner,
    make_partitioner,
)
from repro.engine.router import ShardedIndex, build_sharded_index
from repro.engine.shard import IndexShard

__all__ = [
    "ArbiterStats",
    "BudgetArbiter",
    "ExecutorStats",
    "FaultPlan",
    "HashPartitioner",
    "IndexShard",
    "PARTITIONERS",
    "ParallelShardExecutor",
    "Partitioner",
    "RangePartitioner",
    "SerialShardExecutor",
    "ShardExecutor",
    "ShardTask",
    "ShardedIndex",
    "build_sharded_index",
    "largest_remainder",
    "make_executor",
    "make_partitioner",
]
