"""The budget arbiter: one global soft bound, dynamically apportioned.

The paper's elasticity algorithm (section 4) tunes one index against one
soft size bound.  A database serving many tables under a single memory
envelope needs the bound itself to move: a shard stuck in the SHRINKING
state is demanding space, a NORMAL shard sitting far below its bound is
hoarding slack.  :class:`BudgetArbiter` owns the global bound and
periodically reapportions it across every registered elasticity
controller:

* each shard's **demand weight** is its current occupancy
  (``index_bytes``), boosted by ``pressure_boost`` while the shard is
  SHRINKING — shards under pressure pull budget toward themselves;
* NORMAL shards with headroom donate implicitly: their weight is just
  their occupancy, so their bound contracts toward their actual size;
* every shard keeps at least ``min_bound_bytes`` (an empty shard must
  be able to accept inserts without instantly shrinking);
* a rebalance is applied only when it would move at least
  ``rebalance_fraction`` of the total — hysteresis against churn.

Bounds move through
:meth:`~repro.core.elasticity.ElasticityController.set_soft_bound`,
which preserves each controller's hysteresis state, so a rebalance never
teleports a shard out of SHRINKING; it only changes the thresholds the
ordinary transition rules are evaluated against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.errors import InvalidBudgetError, ShardConfigError
from repro.memory.budget import PressureState
from repro.obs import (
    BudgetRebalanceEvent,
    CacheBudgetEvent,
    ShardPressureEvent,
)


def largest_remainder(total: int, weights: Sequence[float]) -> List[int]:
    """Apportion ``total`` integer units proportionally to ``weights``.

    Integer parts first, then the leftover units go to the largest
    fractional remainders (ties toward earlier entries), so the result
    sums to exactly ``total``.
    """
    weights = list(weights)
    if not weights:
        raise InvalidBudgetError("largest_remainder needs at least one weight")
    if total < 0:
        raise InvalidBudgetError("total must be non-negative")
    if any(w < 0 for w in weights):
        raise InvalidBudgetError("weights must be non-negative")
    weight_sum = sum(weights)
    if weight_sum <= 0:
        raise InvalidBudgetError("weights must sum to a positive value")
    raw = [total * w / weight_sum for w in weights]
    out = [int(r) for r in raw]
    remainder = total - sum(out)
    by_fraction = sorted(
        range(len(weights)), key=lambda i: raw[i] - out[i], reverse=True
    )
    for i in by_fraction[:remainder]:
        out[i] += 1
    return out


@dataclass
class ArbiterStats:
    """Counters of arbiter activity."""

    evaluations: int = 0
    rebalances: int = 0
    skipped_small: int = 0
    bytes_moved: int = 0
    cache_resizes: int = 0
    cache_bytes_moved: int = 0
    #: Per-shard pressure-state samples: state value -> count.
    samples_by_state: Dict[str, int] = field(default_factory=dict)


class BudgetArbiter:
    """Owns one global soft bound across many elastic shards.

    Args:
        total_bytes: The global soft bound being apportioned.
        interval_ops: Database operations between periodic evaluations
            (via :meth:`tick`); explicit :meth:`rebalance` calls work
            regardless.
        pressure_boost: Demand-weight multiplier bonus for SHRINKING
            shards (0.5 = a shrinking shard pulls like an index 50%
            larger).
        min_bound_bytes: Per-shard bound floor.
        rebalance_fraction: Minimum fraction of ``total_bytes`` a
            rebalance must move to be applied (churn hysteresis).
    """

    def __init__(
        self,
        total_bytes: int,
        interval_ops: int = 4096,
        pressure_boost: float = 0.5,
        min_bound_bytes: int = 4096,
        rebalance_fraction: float = 0.02,
    ) -> None:
        if total_bytes <= 0:
            raise InvalidBudgetError("global budget must be positive")
        if interval_ops < 1:
            raise InvalidBudgetError("interval_ops must be positive")
        if pressure_boost < 0:
            raise InvalidBudgetError("pressure_boost must be non-negative")
        if not 0 <= rebalance_fraction < 1:
            raise InvalidBudgetError("rebalance_fraction must be in [0, 1)")
        self.total_bytes = total_bytes
        self.interval_ops = interval_ops
        self.pressure_boost = pressure_boost
        self.min_bound_bytes = min_bound_bytes
        self.rebalance_fraction = rebalance_fraction
        self.stats = ArbiterStats()
        self._names: List[str] = []
        self._controllers: List = []
        self._caches: Dict[str, object] = {}
        self._ops_since = 0
        #: Callables invoked after each interval-driven evaluation, on
        #: the same op-boundary clock — the self-tuning advisor rides
        #: here so advisor actions and cache adaptation share one tick
        #: (no second ``_ops_since`` accumulator anywhere).
        self._interval_hooks: List = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name: str, controller) -> None:
        """Enroll one elasticity controller under the global bound.

        The controller keeps its current bound until the next rebalance;
        registration itself never moves budget (a shard being built
        should not trigger churn on its siblings mid-backfill).
        """
        if name in self._names:
            raise ShardConfigError(f"shard {name!r} already registered")
        self._names.append(name)
        self._controllers.append(controller)

    def register_cache(self, name: str, cache) -> None:
        """Enroll a shard's adaptive cache for budget arbitration.

        The cache's budget then tracks the shard's observed hit-rate
        demand at every evaluation: high hit rates earn the cache a
        larger share of the shard's soft bound, idle caches decay to
        their configured floor.  Registration requires the shard itself
        to be registered first.
        """
        if name not in self._names:
            raise ShardConfigError(
                f"cannot register cache for unknown shard {name!r}"
            )
        if name in self._caches:
            raise ShardConfigError(f"shard {name!r} already has a cache")
        self._caches[name] = cache

    def unregister(self, name: str) -> None:
        """Withdraw a controller (and its cache, if any) from arbitration.

        Used when an index is rebuilt in place (self-tuning preset
        swaps, reshards): the fresh structure's controller re-enrolls
        under the same name.  Unknown names raise — silently dropping a
        typo would leak the stale controller.
        """
        if name not in self._names:
            raise ShardConfigError(f"shard {name!r} is not registered")
        position = self._names.index(name)
        del self._names[position]
        del self._controllers[position]
        self._caches.pop(name, None)

    def unregister_cache(self, name: str) -> None:
        """Withdraw just the cache registered under ``name`` (rebuilds
        that keep the controller but replace the cache object)."""
        if name not in self._caches:
            raise ShardConfigError(f"shard {name!r} has no registered cache")
        del self._caches[name]

    def add_interval_hook(self, hook) -> None:
        """Run ``hook()`` after every interval-driven evaluation.

        Hooks fire at the same operation boundary that triggered the
        rebalance — one shared clock for budget arbitration, cache
        adaptation, and any advisor riding the arbiter, so enabling a
        hook never advances ``_ops_since`` twice per database tick.
        """
        self._interval_hooks.append(hook)

    @property
    def shard_names(self) -> List[str]:
        return list(self._names)

    def bounds(self) -> Dict[str, int]:
        """Current per-shard soft bounds."""
        return {
            name: controller.budget.soft_bound_bytes
            for name, controller in zip(self._names, self._controllers)
        }

    # ------------------------------------------------------------------
    # Periodic driving
    # ------------------------------------------------------------------
    def tick(self, ops: int = 1) -> bool:
        """Count database operations; rebalance every ``interval_ops``.

        Returns True when an evaluation ran (whether or not it moved
        budget).  Must be called at operation boundaries only.
        """
        self._ops_since += ops
        if self._ops_since < self.interval_ops:
            return False
        self._ops_since = 0
        self.rebalance(reason="interval")
        for hook in self._interval_hooks:
            hook()
        return True

    # ------------------------------------------------------------------
    # The arbitration policy
    # ------------------------------------------------------------------
    def rebalance(self, reason: str = "manual") -> bool:
        """Reapportion the global bound; returns True if budget moved."""
        if not self._controllers:
            return False
        self.stats.evaluations += 1
        sizes = [c.tree.index_bytes for c in self._controllers]
        states = [c.state for c in self._controllers]
        old_bounds = [
            c.budget.soft_bound_bytes for c in self._controllers
        ]
        emit = obs.is_enabled()
        for name, controller, size, state in zip(
            self._names, self._controllers, sizes, states
        ):
            self.stats.samples_by_state[state.value] = (
                self.stats.samples_by_state.get(state.value, 0) + 1
            )
            if emit:
                obs.emit(ShardPressureEvent(
                    shard=name, state=state.value, index_bytes=size,
                    soft_bound_bytes=controller.budget.soft_bound_bytes,
                    headroom_bytes=controller.budget.headroom_bytes(size),
                ))

        new_bounds = self._apportion(sizes, states)
        moved = sum(
            abs(new - old) for new, old in zip(new_bounds, old_bounds)
        ) // 2
        if moved < self.rebalance_fraction * self.total_bytes:
            self.stats.skipped_small += 1
            self._adapt_caches()
            return False

        for controller, bound in zip(self._controllers, new_bounds):
            if bound != controller.budget.soft_bound_bytes:
                controller.set_soft_bound(bound)
        self.stats.rebalances += 1
        self.stats.bytes_moved += moved
        if emit:
            obs.emit(BudgetRebalanceEvent(
                reason=reason,
                total_bytes=self.total_bytes,
                bytes_moved=moved,
                shards=list(self._names),
                old_bounds=old_bounds,
                new_bounds=new_bounds,
                states=[state.value for state in states],
            ))
        self._adapt_caches()
        return True

    def _adapt_caches(self) -> None:
        """Resize registered caches toward their hit-rate-weighted demand.

        Each adaptive cache's target budget is
        ``bound * min(max_bound_fraction, window_hit_rate * demand_gain)``
        floored at the cache's ``min_budget_bytes``; a resize is applied
        only when it moves at least ``rebalance_fraction`` of the
        shard's bound (same hysteresis discipline as shard bounds).
        The window hit rate is consumed (reset) every evaluation, so the
        demand signal is recent, not lifetime.
        """
        if not self._caches:
            return
        emit = obs.is_enabled()
        for name, controller in zip(self._names, self._controllers):
            cache = self._caches.get(name)
            if cache is None or not cache.config.adaptive:
                continue
            probes, hits = cache.take_window()
            rate = hits / probes if probes else 0.0
            bound = controller.budget.soft_bound_bytes
            config = cache.config
            target = max(
                config.min_budget_bytes,
                int(bound * min(
                    config.max_bound_fraction, rate * config.demand_gain
                )),
            )
            current = cache.budget_bytes
            if abs(target - current) < self.rebalance_fraction * bound:
                continue
            cache.set_budget(target)
            self.stats.cache_resizes += 1
            self.stats.cache_bytes_moved += abs(target - current)
            if emit:
                obs.emit(CacheBudgetEvent(
                    shard=name,
                    old_budget_bytes=current,
                    new_budget_bytes=target,
                    soft_bound_bytes=bound,
                    hit_rate=rate,
                ))

    def _apportion(
        self, sizes: Sequence[int], states: Sequence[PressureState]
    ) -> List[int]:
        """Target bounds: occupancy-proportional, pressure-boosted,
        floored at ``min_bound_bytes`` per shard."""
        n = len(sizes)
        floor = self.min_bound_bytes
        if self.total_bytes < n * floor:
            # Not enough budget to honour the floor: equal split.
            return largest_remainder(self.total_bytes, [1.0] * n)
        weights = []
        for size, state in zip(sizes, states):
            weight = float(max(size, 1))
            if state is PressureState.SHRINKING:
                weight *= 1.0 + self.pressure_boost
            weights.append(weight)
        distributable = self.total_bytes - n * floor
        extras = largest_remainder(distributable, weights)
        return [floor + extra for extra in extras]

    def report(self) -> List[Dict[str, object]]:
        """Per-shard bound/size/state snapshot (bench reporting)."""
        out: List[Dict[str, object]] = []
        for name, controller in zip(self._names, self._controllers):
            size = controller.tree.index_bytes
            row: Dict[str, object] = {
                "name": name,
                "index_bytes": size,
                "soft_bound_bytes": controller.budget.soft_bound_bytes,
                "state": controller.state.value,
                "headroom_bytes": controller.budget.headroom_bytes(size),
            }
            cache = self._caches.get(name)
            if cache is not None:
                row["cache_budget_bytes"] = cache.budget_bytes
                row["cache_bytes"] = cache.bytes_used
                row["cache_hit_rate"] = cache.hit_rate
            out.append(row)
        return out
