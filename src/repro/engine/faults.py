"""Deterministic fault injection for the parallel shard executor.

Every robustness path in :class:`~repro.engine.executor.
ParallelShardExecutor` — conflict retry, straggler hedging, serial
degradation — must be unit-testable without real thread-timing
nondeterminism.  A :class:`FaultPlan` scripts the faults ahead of time
in the same vocabulary the cost model uses:

* ``fail(shard=k, op=n, times=t)`` — shard ``k``'s ``n``-th dispatch
  (0-based, counted per shard across the executor's lifetime) reports a
  transient conflict on its first ``t`` attempts, the cost-model
  analogue of an OLC version validation failure
  (:class:`repro.concurrency.olc_tree.Restart`).
* ``delay(shard=k, units=c)`` — shard ``k``'s dispatches charge ``c``
  extra cost units, modeling a straggler (NUMA-remote shard, cold
  cache, noisy neighbour).  With ``once=True`` (the default) only the
  next dispatch is delayed, so a hedged duplicate dispatch runs at full
  speed and wins; with ``once=False`` the slowness is persistent and
  the hedge loses.
* ``saturate(calls=n)`` — the next ``n`` scatter batches observe a
  saturated dispatch pool and must degrade to the serial backend.
* ``down(replica=k, beats=n, after=m)`` — replica ``k`` fails ``n``
  consecutive heartbeats, starting ``m`` healthy beats from now: the
  cluster router marks it down, reroutes its query classes to the
  next-cheapest survivor, and re-admits it at the first healthy beat
  (see :mod:`repro.cluster`).
* ``kill(append=k)`` / ``kill(fsync=k)`` / ``kill(apply=k)`` — a
  simulated process kill at a write-ahead-log point (see
  :mod:`repro.wal`): the crash fires immediately *after* the ``k``-th
  (0-based, counted over the log's lifetime) record append, stream
  fsync, or applied operation completes, raising
  :class:`~repro.wal.CrashError`.  Everything volatile at that instant
  — unfsynced log suffixes, in-memory table and index state — is lost;
  recovery replays the durable prefix (snapshot + log).

Plans are consumed mutably (each scripted fault fires once) and are
pure bookkeeping: a plan never touches wall-clock, threads, or random
state, so a test replaying the same plan sees byte-identical costs and
event streams.
"""

from __future__ import annotations

from typing import Dict, Tuple


class FaultPlan:
    """A scripted, self-consuming schedule of executor faults."""

    def __init__(self) -> None:
        #: (shard, dispatch ordinal) -> remaining conflicting attempts.
        self._conflicts: Dict[Tuple[int, int], int] = {}
        #: shard -> (extra cost units per dispatch, one-shot flag).
        self._delays: Dict[int, Tuple[float, bool]] = {}
        self._saturated_calls = 0
        #: replica -> outage segments, each [healthy beats to skip,
        #: failed beats to serve], consumed in scripting order.
        self._outages: Dict[int, list] = {}
        #: WAL kill point -> ordinal after which the crash fires.
        self._kills: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Scripting (builder-style, chainable)
    # ------------------------------------------------------------------
    def fail(self, shard: int, op: int = 0, times: int = 1) -> "FaultPlan":
        """Fail ``shard``'s ``op``-th dispatch for its first ``times``
        attempts with a transient conflict."""
        if times < 1:
            raise ValueError("times must be positive")
        self._conflicts[(shard, op)] = (
            self._conflicts.get((shard, op), 0) + times
        )
        return self

    def delay(self, shard: int, units: float,
              once: bool = True) -> "FaultPlan":
        """Charge ``units`` extra cost to ``shard``'s dispatches."""
        if units <= 0:
            raise ValueError("delay units must be positive")
        self._delays[shard] = (units, once)
        return self

    def saturate(self, calls: int = 1) -> "FaultPlan":
        """Make the next ``calls`` scatter batches see a full pool."""
        if calls < 1:
            raise ValueError("calls must be positive")
        self._saturated_calls += calls
        return self

    def down(self, replica: int, beats: int = 1,
             after: int = 0) -> "FaultPlan":
        """Fail ``beats`` consecutive heartbeats of ``replica``,
        starting ``after`` healthy beats from now (read outage)."""
        if beats < 1:
            raise ValueError("beats must be positive")
        if after < 0:
            raise ValueError("after must be >= 0")
        self._outages.setdefault(replica, []).append([after, beats])
        return self

    def kill(
        self,
        append: int = -1,
        fsync: int = -1,
        apply: int = -1,
    ) -> "FaultPlan":
        """Script one simulated process kill at a WAL point.

        Exactly one of ``append`` / ``fsync`` / ``apply`` names the
        0-based lifetime ordinal *after* which the crash fires: the
        action completes, then the kill lands (so a crash after
        ``append=k`` leaves ``k + 1`` records appended but possibly
        none of them durable).  One kill per point may be scripted.
        """
        requested = {
            point: ordinal
            for point, ordinal in (
                ("append", append), ("fsync", fsync), ("apply", apply),
            )
            if ordinal >= 0
        }
        if len(requested) != 1:
            raise ValueError(
                "kill() takes exactly one of append=, fsync=, apply="
            )
        (point, ordinal), = requested.items()
        if point in self._kills:
            raise ValueError(f"a {point} kill is already scripted")
        self._kills[point] = ordinal
        return self

    # ------------------------------------------------------------------
    # Consumption (called by the executor)
    # ------------------------------------------------------------------
    def take_conflict(self, shard: int, op: int) -> bool:
        """Consume one scheduled conflict for this dispatch, if any."""
        key = (shard, op)
        remaining = self._conflicts.get(key, 0)
        if remaining <= 0:
            return False
        if remaining == 1:
            del self._conflicts[key]
        else:
            self._conflicts[key] = remaining - 1
        return True

    def drop_conflicts(self, shard: int, op: int) -> None:
        """Discard this dispatch's remaining scheduled conflicts (the
        executor's retries are exhausted and it degrades instead)."""
        self._conflicts.pop((shard, op), None)

    def take_delay(self, shard: int) -> float:
        """Extra cost units for ``shard``'s next dispatch (0 if none)."""
        entry = self._delays.get(shard)
        if entry is None:
            return 0.0
        units, once = entry
        if once:
            del self._delays[shard]
        return units

    def take_saturation(self) -> bool:
        """Whether this scatter batch sees a saturated pool."""
        if self._saturated_calls <= 0:
            return False
        self._saturated_calls -= 1
        return True

    def take_heartbeat(self, replica: int) -> bool:
        """Consume one heartbeat for ``replica``; True if it is down.

        Each scripted outage beat fires exactly once, so a plan replayed
        against the same op stream yields the same down/up timeline.
        """
        segments = self._outages.get(replica)
        if not segments:
            return False
        segment = segments[0]
        if segment[0] > 0:
            segment[0] -= 1
            return False
        segment[1] -= 1
        if segment[1] <= 0:
            segments.pop(0)
            if not segments:
                del self._outages[replica]
        return True

    def take_kill(self, point: str, ordinal: int) -> bool:
        """Consume the scripted kill at ``point`` if it matches this
        ``ordinal``; True means the caller must crash now."""
        if self._kills.get(point) != ordinal:
            return False
        del self._kills[point]
        return True

    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        """True once every scripted fault has fired."""
        return (
            not self._conflicts
            and not self._delays
            and self._saturated_calls == 0
            and not self._outages
            and not self._kills
        )

    def __repr__(self) -> str:
        return (
            f"FaultPlan(conflicts={self._conflicts!r}, "
            f"delays={self._delays!r}, "
            f"saturated_calls={self._saturated_calls}, "
            f"outages={self._outages!r}, "
            f"kills={self._kills!r})"
        )
