"""The router layer: scatter/gather over a set of index shards.

:class:`ShardedIndex` presents the :class:`~repro.baselines.interface.
OrderedIndex` surface over N per-shard indexes, so every consumer of the
protocol — :class:`~repro.exec.BatchExecutor`, the database facade, the
workload runners — works against a sharded index unchanged:

* Point operations (``insert`` / ``lookup`` / ``remove``) route to the
  one shard the partitioner places the key on.
* Batch operations partition the batch per shard and hand each segment
  to the shard index's own batch fast path (sorted-run descent sharing
  on the B+-tree family), gathering results back into input order.
* Scans depend on the partitioner: range partitioning keeps shard order
  equal to key order, so a scan drains the start shard and spills into
  successive shards; hash partitioning scatters the scan to every shard
  and k-way merges the per-shard runs.

*How* the per-shard segments execute is delegated to a
:class:`~repro.engine.executor.ShardExecutor`: the default serial
backend visits shards one at a time (byte-identical to the unsharded
index in results and cost units), while the parallel backend overlaps
shard dispatches and charges critical-path cost — see
:mod:`repro.engine.executor`.

Results are byte-identical to the same index unsharded under either
backend: every key lives on exactly one deterministic shard, batch
segments preserve input order within a shard (duplicate keys apply in
input order), and scan merges reassemble global key order.
"""

from __future__ import annotations

import heapq
from itertools import islice
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.engine.executor import SerialShardExecutor, ShardExecutor, ShardTask
from repro.engine.partition import Partitioner, make_partitioner
from repro.engine.shard import IndexShard
from repro.errors import ShardConfigError
from repro.memory.cost_model import NULL_COST_MODEL, CostModel
from repro.obs import ShardRouteEvent

#: Shared default backend: stateless, so one instance serves every
#: serial-routed index.
_SERIAL = SerialShardExecutor()


class ShardedIndex:
    """An OrderedIndex that hash- or range-partitions across shards."""

    def __init__(
        self,
        shards: Sequence[IndexShard],
        partitioner: Partitioner,
        executor: Optional[ShardExecutor] = None,
        cost: Optional[CostModel] = None,
    ) -> None:
        if len(shards) != partitioner.n_shards:
            raise ShardConfigError(
                f"partitioner expects {partitioner.n_shards} shards, "
                f"got {len(shards)}"
            )
        self.shards: List[IndexShard] = list(shards)
        self.partitioner = partitioner
        self.executor: ShardExecutor = executor if executor is not None else _SERIAL
        if cost is None:
            cost = (
                self.shards[0].allocator.cost_model
                if self.shards else NULL_COST_MODEL
            )
        self.cost = cost

    # ------------------------------------------------------------------
    # Point operations: route to one shard
    # ------------------------------------------------------------------
    def _shard(self, key: bytes) -> IndexShard:
        return self.shards[self.partitioner.shard_of(key)]

    def insert(self, key: bytes, tid: int) -> Optional[int]:
        return self._shard(key).index.insert(key, tid)

    def lookup(self, key: bytes) -> Optional[int]:
        return self._shard(key).index.lookup(key)

    def remove(self, key: bytes) -> Optional[int]:
        return self._shard(key).index.remove(key)

    # ------------------------------------------------------------------
    # Scans: spill in shard order, or scatter + merge
    # ------------------------------------------------------------------
    def scan(self, start_key: bytes, count: int) -> List[Tuple[bytes, int]]:
        if count <= 0:
            return []
        if self.partitioner.ordered:
            items: List[Tuple[bytes, int]] = []
            first = self.partitioner.shard_of(start_key)
            for shard in self.shards[first:]:
                items.extend(shard.index.scan(start_key, count - len(items)))
                if len(items) >= count:
                    break
            return items
        runs = self.executor.run_tasks(
            "scan",
            [
                ShardTask(
                    shard_id=shard.shard_id, ops=1, read_only=True,
                    run=lambda s=shard: s.index.scan(start_key, count),
                )
                for shard in self.shards
            ],
            self.cost,
        )
        return list(islice(heapq.merge(*runs), count))

    # ------------------------------------------------------------------
    # Batch operations: partition, per-shard fast path, gather
    # ------------------------------------------------------------------
    def _group_by_shard(self, keys: Sequence[bytes]) -> Dict[int, List[int]]:
        """Input positions per shard, preserving input order."""
        groups: Dict[int, List[int]] = {}
        shard_of = self.partitioner.shard_of
        for position, key in enumerate(keys):
            groups.setdefault(shard_of(key), []).append(position)
        return groups

    def _emit_routes(self, op: str, groups: Dict[int, List[int]]) -> None:
        if obs.is_enabled():
            for shard_id, positions in sorted(groups.items()):
                obs.emit(ShardRouteEvent(
                    op=op, shard=shard_id, ops=len(positions),
                    fanout=len(groups),
                ))

    def lookup_batch(self, keys: Sequence[bytes]) -> List[Optional[int]]:
        results: List[Optional[int]] = [None] * len(keys)
        groups = self._group_by_shard(keys)
        self._emit_routes("get", groups)
        tasks = [
            ShardTask(
                shard_id=shard_id, ops=len(positions), read_only=True,
                run=lambda s=self.shards[shard_id],
                ks=[keys[p] for p in positions]: s.index.lookup_batch(ks),
            )
            for shard_id, positions in groups.items()
        ]
        gathered = self.executor.run_tasks("get", tasks, self.cost)
        for positions, hits in zip(groups.values(), gathered):
            for position, tid in zip(positions, hits):
                results[position] = tid
        return results

    def insert_sorted_batch(
        self, pairs: Sequence[Tuple[bytes, int]]
    ) -> List[Optional[int]]:
        results: List[Optional[int]] = [None] * len(pairs)
        groups = self._group_by_shard([key for key, _ in pairs])
        self._emit_routes("insert", groups)
        tasks = [
            ShardTask(
                shard_id=shard_id, ops=len(positions), read_only=False,
                run=lambda s=self.shards[shard_id],
                ps=[pairs[p] for p in positions]: s.index.insert_sorted_batch(ps),
            )
            for shard_id, positions in groups.items()
        ]
        gathered = self.executor.run_tasks("insert", tasks, self.cost)
        for positions, replaced in zip(groups.values(), gathered):
            for position, tid in zip(positions, replaced):
                results[position] = tid
        return results

    def scan_batch(
        self, start_keys: Sequence[bytes], count: int
    ) -> List[List[Tuple[bytes, int]]]:
        results: List[List[Tuple[bytes, int]]] = [[] for _ in start_keys]
        if not start_keys or count <= 0:
            return results
        if not self.partitioner.ordered:
            # Scatter to every shard, merge per start key.
            tasks = [
                ShardTask(
                    shard_id=shard.shard_id, ops=len(start_keys),
                    read_only=True,
                    run=lambda s=shard: s.index.scan_batch(start_keys, count),
                )
                for shard in self.shards
            ]
            runs = self.executor.run_tasks("scan", tasks, self.cost)
            self._emit_routes(
                "scan",
                {i: list(range(len(start_keys))) for i in range(len(self.shards))},
            )
            for position in range(len(start_keys)):
                merged = heapq.merge(*(run[position] for run in runs))
                results[position] = list(islice(merged, count))
            return results
        groups = self._group_by_shard(start_keys)
        self._emit_routes("scan", groups)
        tasks = [
            ShardTask(
                shard_id=shard_id, ops=len(positions), read_only=True,
                run=lambda s=self.shards[shard_id],
                ks=[start_keys[p] for p in positions]: s.index.scan_batch(
                    ks, count
                ),
            )
            for shard_id, positions in groups.items()
        ]
        gathered = self.executor.run_tasks("scan", tasks, self.cost)
        for (shard_id, positions), batches in zip(groups.items(), gathered):
            for position, items in zip(positions, batches):
                # Spill into successive shards until the scan fills.
                # The spill chain is a sequential dependency (each hop
                # knows how many items are still missing), so it stays
                # on the caller's critical path under every backend.
                for shard in self.shards[shard_id + 1:]:
                    if len(items) >= count:
                        break
                    items = items + shard.index.scan(
                        start_keys[position], count - len(items)
                    )
                results[position] = items
        return results

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    @property
    def index_bytes(self) -> int:
        return sum(shard.index_bytes for shard in self.shards)

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def controllers(self) -> List:
        """Elasticity controllers of the elastic shards, in shard order."""
        return [s.controller for s in self.shards if s.controller is not None]

    def shard_report(self) -> List[Dict[str, float]]:
        """Per-shard occupancy/pressure snapshot (bench reporting)."""
        report = []
        for shard in self.shards:
            state = shard.pressure_state
            report.append({
                "name": shard.name,
                "items": len(shard),
                "index_bytes": shard.index_bytes,
                "soft_bound_bytes": shard.soft_bound_bytes or 0,
                "compact_fraction": shard.compact_fraction,
                "state": state.value if state is not None else "",
            })
        return report

    def caches(self) -> List:
        """Adaptive caches of the shards that have one, in shard order."""
        return [s.cache for s in self.shards if s.cache is not None]

    def cache_report(self) -> List[Dict[str, object]]:
        """Per-shard cache occupancy/hit-rate snapshot."""
        return [
            dict(shard.cache.report().as_dict(), shard=shard.name)
            for shard in self.shards
            if shard.cache is not None
        ]


def build_sharded_index(
    kind: str,
    *,
    table,
    cost,
    key_width: int,
    n_shards: int,
    partitioner: str = "hash",
    size_bound_bytes: Optional[int] = None,
    name: str = "",
    executor: Optional[ShardExecutor] = None,
    cache=None,
    **index_kwargs,
) -> ShardedIndex:
    """Build ``n_shards`` independent ``kind`` indexes behind one router.

    Each shard gets its own tracking allocator (isolated footprint and
    budget observations) over the shared cost model; an elastic
    ``size_bound_bytes`` is split equally across shards with
    largest-remainder rounding — the static apportionment a
    :class:`~repro.engine.arbiter.BudgetArbiter` later overrides.
    ``executor`` selects the scatter/gather backend (default serial).
    A :class:`~repro.cache.CacheConfig` as ``cache`` attaches one
    adaptive cache per shard, splitting the configured budget across
    shards the same way the soft bound is split; writes routed to a
    shard invalidate that shard's cache through the tree write path.
    """
    from repro.memory.allocator import TrackingAllocator
    from repro.registry import build_index

    part = make_partitioner(partitioner, n_shards)
    if size_bound_bytes is not None:
        from repro.engine.arbiter import largest_remainder

        bounds = largest_remainder(size_bound_bytes, [1.0] * n_shards)
    else:
        bounds = [None] * n_shards
    cache_budgets = [None] * n_shards
    if cache is not None:
        from dataclasses import replace

        from repro.cache import IndexCache
        from repro.engine.arbiter import largest_remainder
        from repro.errors import CacheConfigError

        cache.validate()
        floor = cache.min_budget_bytes
        per_shard = largest_remainder(
            max(cache.budget_bytes, n_shards * floor), [1.0] * n_shards
        )
        cache_budgets = [max(b, floor) for b in per_shard]
    shards = []
    for shard_id in range(n_shards):
        allocator = TrackingAllocator(cost_model=cost)
        index = build_index(
            kind,
            table=table,
            allocator=allocator,
            cost=cost,
            key_width=key_width,
            size_bound_bytes=bounds[shard_id],
            **index_kwargs,
        )
        label = f"{name}[{shard_id}]" if name else f"shard[{shard_id}]"
        if cache is not None:
            if not hasattr(index, "attach_cache"):
                raise CacheConfigError(
                    f"index kind {kind!r} does not support adaptive caching"
                )
            shard_config = replace(cache, budget_bytes=cache_budgets[shard_id])
            if bounds[shard_id] is not None:
                shard_config.validate(bounds[shard_id])
            index.attach_cache(
                IndexCache(shard_config, name=f"{label}.cache")
            )
        shards.append(IndexShard(shard_id, index, allocator, name=label))
    return ShardedIndex(shards, part, executor=executor, cost=cost)
