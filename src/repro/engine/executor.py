"""Scatter/gather execution backends for the shard router.

The router partitions a batch into per-shard sub-batches; a
:class:`ShardExecutor` decides *how* the sub-batches execute:

* :class:`SerialShardExecutor` visits shards one at a time — the
  pre-executor behaviour, byte-identical in results **and** cost units.
* :class:`ParallelShardExecutor` dispatches the sub-batches over a
  ``ThreadPoolExecutor`` and charges **critical-path cost**: shards
  that execute concurrently overlap, so each wave of ``workers``
  dispatches charges only its most expensive member (plus a modeled
  per-shard coordination fee for the scatter/merge bookkeeping), not
  the serial sum.  This is the shard-level analogue of the cost model's
  ``key_load_batched`` memory-level-parallelism discount — the lever
  the Cuckoo Trie identifies as dominant for in-memory index
  throughput — applied at the granularity the evaluation hardware
  actually exploits (cores x shards, not just outstanding loads).

Cost accounting under threads
-----------------------------
Shards are disjoint indexes, but they share one
:class:`~repro.memory.cost_model.CostModel` ledger, and CPython threads
interleave at bytecode granularity — letting worker threads charge the
shared ledger concurrently would garble per-shard attribution and break
the repo-wide determinism contract.  The parallel backend therefore
serializes each sub-batch's *execution + measurement* under one lock
(in CPython the GIL makes pure-Python shard work effectively serial
anyway; the pool buys scheduling structure, saturation semantics, and
real concurrency for any index that releases the GIL), measures each
shard's exact cost delta, and then performs the parallelism *in the
ledger*: :meth:`~repro.memory.cost_model.CostModel.charge_parallel`
rebates every event hidden behind the critical path.  Results, costs,
and event streams are byte-identical across runs regardless of thread
completion order, because all events are emitted by the coordinator in
shard order after the gather.

Interaction with prefetch-wave pricing (DESIGN.md §10): a shard whose
sub-batch runs with an :meth:`~repro.memory.cost_model.CostModel.
mlp_window` width >= 2 records *wave-priced* counts (including the
``wave_issue`` fees) in its measured delta, because every window opens
and closes inside the measurement lock.  ``charge_parallel`` then
rebates whole deltas of non-critical shards — exactly the counts they
charged, wave fees included — so wave pricing and critical-path
rebating **compose**: the intra-shard MLP discount applies first, the
inter-shard overlap discount second, and no event is ever discounted
twice (nor can a rebate recreate serial pricing for a wave-priced
load).

Robustness layers (all scriptable via
:class:`~repro.engine.faults.FaultPlan`, all observable as events):

* **bounded retry with backoff** — a shard reporting a transient
  conflict (:class:`~repro.errors.ShardConflictError`, the OLC
  version-validation analogue) is retried up to ``max_retries`` times,
  charging a doubling ``backoff_units`` fee per retry
  (``shard_retry`` events);
* **serial degradation per shard** — once retries are exhausted the
  final attempt runs unconditionally (``executor_degrade`` event,
  scope ``"shard"``), so a scatter always completes;
* **deadline budgets + hedging** — a read-only sub-batch whose
  measured cost exceeds ``deadline_units`` is a straggler: a duplicate
  dispatch is issued and the cheaper attempt wins, the loser's events
  are rebated (``shard_hedge`` events).  Write sub-batches are never
  hedged (duplicate inserts are not idempotent);
* **serial degradation per batch** — a saturated or shut-down pool
  degrades the whole scatter to the serial backend
  (``executor_degrade`` event, scope ``"batch"``).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.engine.faults import FaultPlan
from repro.errors import (
    ExecutorSaturatedError,
    ShardConfigError,
    ShardConflictError,
)
from repro.memory.cost_model import CostModel
from repro.obs import (
    ExecutorDegradeEvent,
    ParallelGatherEvent,
    ShardDispatchEvent,
    ShardHedgeEvent,
    ShardRetryEvent,
)


@dataclass
class ShardTask:
    """One shard's share of a scatter: a closure over its sub-batch."""

    shard_id: int
    ops: int
    read_only: bool
    run: Callable[[], Any]


@dataclass
class ExecutorStats:
    """Counters of parallel-executor activity."""

    batches: int = 0
    dispatches: int = 0
    retries: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    degraded_batches: int = 0
    degraded_shards: int = 0
    serial_sum_units: float = 0.0
    critical_path_units: float = 0.0

    @property
    def saved_units(self) -> float:
        """Cost units hidden behind critical paths so far."""
        return self.serial_sum_units - self.critical_path_units


class ShardExecutor:
    """Strategy interface: execute a scatter of per-shard sub-batches.

    ``run_tasks`` returns one result per task, in task order.  The
    serial backend is the identity strategy; alternative backends may
    reorder or overlap execution but must preserve per-task results.
    """

    name = "abstract"

    def run_tasks(
        self, op: str, tasks: Sequence[ShardTask], cost: CostModel
    ) -> List[Any]:
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (idempotent)."""


class SerialShardExecutor(ShardExecutor):
    """Visit shards one at a time; byte-identical to the pre-executor
    router loop in results and cost units."""

    name = "serial"

    def run_tasks(
        self, op: str, tasks: Sequence[ShardTask], cost: CostModel
    ) -> List[Any]:
        return [task.run() for task in tasks]


@dataclass
class _Outcome:
    """Coordinator-side record of one shard dispatch."""

    task: ShardTask
    result: Any = None
    delta: Optional[CostModel] = None
    attempts: int = 1
    retries: List[Tuple[int, float]] = field(default_factory=list)
    degraded: bool = False
    hedged: bool = False
    hedge_winner: str = ""
    primary_units: float = 0.0
    hedge_units: float = 0.0

    @property
    def cost_units(self) -> float:
        return self.delta.weighted_cost() if self.delta is not None else 0.0


class ParallelShardExecutor(ShardExecutor):
    """Concurrent scatter/gather with critical-path cost accounting.

    Args:
        workers: Concurrent dispatch width — shards overlap in waves of
            this many; also the thread-pool size.
        coordination_units: Modeled merge/coordination fee, in
            ``fixed_op`` cost units *per shard gathered* (the scatter
            bookkeeping, result splice, and k-way merge steering that
            serial execution does not pay).
        deadline_units: Per-shard deadline budget in cost units.  A
            read-only sub-batch measuring above it is hedged with a
            duplicate dispatch; ``None`` disables hedging.
        max_retries: Bounded retries per dispatch for transient shard
            conflicts; the attempt after the last retry runs
            unconditionally (serial degradation per shard).
        backoff_units: Backoff fee charged per retry, doubling per
            attempt (``backoff_units * 2**(attempt-1)``).
        faults: Optional :class:`~repro.engine.faults.FaultPlan`
            scripting conflicts, straggler delays, and pool saturation
            deterministically.
        strict_saturation: Raise
            :class:`~repro.errors.ExecutorSaturatedError` when the pool
            cannot accept a batch instead of degrading it to the serial
            backend.  Engine paths leave this off (scatter results must
            always materialize); direct executor users who prefer to
            shed load themselves can opt in.
    """

    name = "parallel"

    def __init__(
        self,
        workers: int = 4,
        *,
        coordination_units: float = 0.05,
        deadline_units: Optional[float] = None,
        max_retries: int = 2,
        backoff_units: float = 0.5,
        faults: Optional[FaultPlan] = None,
        strict_saturation: bool = False,
    ) -> None:
        if workers < 1:
            raise ShardConfigError("parallel executor needs workers >= 1")
        if coordination_units < 0:
            raise ShardConfigError("coordination_units must be >= 0")
        if deadline_units is not None and deadline_units <= 0:
            raise ShardConfigError("deadline_units must be positive")
        if max_retries < 0:
            raise ShardConfigError("max_retries must be >= 0")
        if backoff_units < 0:
            raise ShardConfigError("backoff_units must be >= 0")
        self.workers = workers
        self.coordination_units = coordination_units
        self.deadline_units = deadline_units
        self.max_retries = max_retries
        self.backoff_units = backoff_units
        self.faults = faults
        self.strict_saturation = strict_saturation
        self.stats = ExecutorStats()
        self._serial = SerialShardExecutor()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._closed = False
        #: Serializes sub-batch execution + cost measurement (see
        #: module docstring: per-shard deltas must be exact).
        self._measure_lock = threading.Lock()
        #: Per-shard dispatch ordinal (FaultPlan addressing).
        self._ordinals: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._closed:
            raise RuntimeError("executor closed")
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-shard"
            )
        return self._pool

    def close(self) -> None:
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def run_tasks(
        self, op: str, tasks: Sequence[ShardTask], cost: CostModel
    ) -> List[Any]:
        if not tasks:
            return []
        if len(tasks) == 1:
            # Nothing to overlap: a single-shard scatter is exactly the
            # serial path (no coordination fee, no pool round-trip).
            return self._serial.run_tasks(op, tasks, cost)
        if self.faults is not None and self.faults.take_saturation():
            if self.strict_saturation:
                raise ExecutorSaturatedError("dispatch pool saturated")
            return self._degrade_batch(op, tasks, cost, "pool_saturated")
        try:
            pool = self._ensure_pool()
            futures = [
                pool.submit(self._run_shard, op, task, self._next_ordinal(task),
                            cost)
                for task in tasks
            ]
        except RuntimeError:
            if self.strict_saturation:
                raise ExecutorSaturatedError("dispatch pool closed") from None
            return self._degrade_batch(op, tasks, cost, "pool_closed")
        outcomes = [future.result() for future in futures]

        # Hedge stragglers (reads only), then charge the critical path.
        if self.deadline_units is not None:
            for outcome in outcomes:
                if (
                    outcome.task.read_only
                    and outcome.cost_units > self.deadline_units
                ):
                    self._hedge(op, outcome, cost)

        deltas = [outcome.delta for outcome in outcomes]
        serial_sum, critical = cost.charge_parallel(
            deltas, self.workers, self.coordination_units * len(tasks)
        )
        self._record(op, outcomes, serial_sum, critical)
        return [outcome.result for outcome in outcomes]

    def _next_ordinal(self, task: ShardTask) -> int:
        ordinal = self._ordinals.get(task.shard_id, 0)
        self._ordinals[task.shard_id] = ordinal + 1
        return ordinal

    def _run_shard(
        self, op: str, task: ShardTask, ordinal: int, cost: CostModel
    ) -> _Outcome:
        """Worker body: execute one sub-batch, measured, with bounded
        conflict retry.  Runs under the measurement lock so the delta
        is exact; emits nothing (the coordinator owns event order)."""
        outcome = _Outcome(task)
        faults = self.faults
        with self._measure_lock:
            with cost.measure() as delta:
                attempt = 0
                while True:
                    attempt += 1
                    conflicted = (
                        faults is not None
                        and faults.take_conflict(task.shard_id, ordinal)
                    )
                    if not conflicted:
                        try:
                            outcome.result = task.run()
                            break
                        except ShardConflictError:
                            conflicted = True
                    if attempt > self.max_retries:
                        # Retries exhausted: degrade to an
                        # unconditional final attempt so the scatter
                        # always completes.
                        if faults is not None:
                            faults.drop_conflicts(task.shard_id, ordinal)
                        outcome.degraded = True
                        outcome.result = task.run()
                        attempt += 1
                        break
                    backoff = self.backoff_units * (2 ** (attempt - 1))
                    if backoff:
                        cost.fixed_ops(backoff)
                    outcome.retries.append((attempt, backoff))
                delay = (
                    faults.take_delay(task.shard_id)
                    if faults is not None else 0.0
                )
                if delay:
                    cost.fixed_ops(delay)
            outcome.delta = delta
            outcome.attempts = attempt
        return outcome

    def _hedge(self, op: str, outcome: _Outcome, cost: CostModel) -> None:
        """Duplicate-dispatch a straggler read; the cheaper attempt wins
        and the loser's events are rebated from the ledger."""
        task = outcome.task
        outcome.primary_units = outcome.cost_units
        with self._measure_lock:
            with cost.measure() as hedge_delta:
                hedge_result = task.run()
                delay = (
                    self.faults.take_delay(task.shard_id)
                    if self.faults is not None else 0.0
                )
                if delay:
                    cost.fixed_ops(delay)
        outcome.hedged = True
        outcome.hedge_units = hedge_delta.weighted_cost()
        if outcome.hedge_units < outcome.primary_units:
            outcome.hedge_winner = "hedge"
            cost.rebate_delta(outcome.delta)
            outcome.result = hedge_result
            outcome.delta = hedge_delta
        else:
            outcome.hedge_winner = "primary"
            cost.rebate_delta(hedge_delta)

    def _degrade_batch(
        self, op: str, tasks: Sequence[ShardTask], cost: CostModel,
        reason: str,
    ) -> List[Any]:
        self.stats.degraded_batches += 1
        if obs.is_enabled():
            obs.emit(ExecutorDegradeEvent(op=op, reason=reason,
                                          scope="batch"))
        return self._serial.run_tasks(op, tasks, cost)

    # ------------------------------------------------------------------
    # Gather-side accounting (deterministic event order)
    # ------------------------------------------------------------------
    def _record(
        self, op: str, outcomes: Sequence[_Outcome],
        serial_sum: float, critical: float,
    ) -> None:
        stats = self.stats
        stats.batches += 1
        stats.dispatches += len(outcomes)
        stats.serial_sum_units += serial_sum
        stats.critical_path_units += critical
        emit = obs.is_enabled()
        for position, outcome in enumerate(outcomes):
            stats.retries += len(outcome.retries)
            if outcome.degraded:
                stats.degraded_shards += 1
            if outcome.hedged:
                stats.hedges += 1
                if outcome.hedge_winner == "hedge":
                    stats.hedge_wins += 1
            if not emit:
                continue
            for attempt, backoff in outcome.retries:
                obs.emit(ShardRetryEvent(
                    op=op, shard=outcome.task.shard_id,
                    attempt=attempt, backoff_units=backoff,
                ))
            if outcome.degraded:
                obs.emit(ExecutorDegradeEvent(
                    op=op, reason="retries_exhausted", scope="shard",
                    shard=outcome.task.shard_id,
                ))
            if outcome.hedged:
                obs.emit(ShardHedgeEvent(
                    op=op, shard=outcome.task.shard_id,
                    primary_units=outcome.primary_units,
                    hedge_units=outcome.hedge_units,
                    winner=outcome.hedge_winner,
                ))
            obs.emit(ShardDispatchEvent(
                op=op, shard=outcome.task.shard_id, ops=outcome.task.ops,
                wave=position // self.workers, attempts=outcome.attempts,
                cost_units=outcome.cost_units, hedged=outcome.hedged,
            ))
        if emit:
            obs.emit(ParallelGatherEvent(
                op=op, shards=len(outcomes),
                waves=(len(outcomes) + self.workers - 1) // self.workers,
                workers=self.workers,
                ops=sum(outcome.task.ops for outcome in outcomes),
                serial_sum_units=serial_sum,
                critical_path_units=critical,
                coordination_units=self.coordination_units * len(outcomes),
            ))


def make_executor(
    parallel, *, faults: Optional[FaultPlan] = None, **knobs
) -> Optional[ShardExecutor]:
    """Resolve a ``parallel=`` knob into an executor instance.

    ``parallel`` may be falsy (serial routing — returns ``None`` so the
    router keeps its shared serial default), ``True`` (parallel backend
    with the default worker count), an ``int`` (worker count), or an
    already-built :class:`ShardExecutor` (returned as-is; ``faults`` /
    ``knobs`` must not also be given).
    """
    if isinstance(parallel, ShardExecutor):
        if faults is not None or knobs:
            raise ShardConfigError(
                "pass executor knobs to the ShardExecutor constructor, "
                "not alongside a pre-built executor"
            )
        return parallel
    if isinstance(parallel, bool):
        if not parallel:
            return None
        return ParallelShardExecutor(faults=faults, **knobs)
    if isinstance(parallel, int):
        if parallel < 1:
            raise ShardConfigError("parallel worker count must be >= 1")
        return ParallelShardExecutor(workers=parallel, faults=faults, **knobs)
    raise ShardConfigError(
        f"parallel must be a bool, int, or ShardExecutor, "
        f"got {parallel!r}"
    )
