"""Key partitioners: deterministic key -> shard placement.

Both partitioners are pure functions of the key bytes (no salted
``hash()``, no per-process state), so a workload replay routes every
operation to the same shard in every run — the same determinism contract
as the cost model and the event bus.

* :class:`RangePartitioner` slices the key space into ``n_shards`` equal
  contiguous intervals by the key's leading 64 bits.  Shard order equals
  key order (``ordered = True``), so range scans spill from one shard
  into the next without merging.  Uniform key distributions balance;
  skewed ones do not — which is exactly the imbalance the budget
  arbiter compensates for by moving soft-bound bytes instead of rows.
* :class:`HashPartitioner` spreads keys by CRC-32, balancing occupancy
  under any key distribution at the price of order: every shard holds a
  sample of the whole key range, so scans scatter to all shards and
  merge (``ordered = False``).
"""

from __future__ import annotations

import zlib

from repro.errors import ShardConfigError


class Partitioner:
    """Deterministic placement of fixed-width keys onto shards."""

    #: Whether shard id order is key order (contiguous key intervals).
    ordered: bool = False

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ShardConfigError("need at least one shard")
        self.n_shards = n_shards

    def shard_of(self, key: bytes) -> int:
        raise NotImplementedError

    def describe(self) -> str:
        return f"{type(self).__name__}(n_shards={self.n_shards})"


class RangePartitioner(Partitioner):
    """Equal slices of the 64-bit key-prefix space, in key order."""

    ordered = True

    def shard_of(self, key: bytes) -> int:
        prefix = int.from_bytes(key[:8].ljust(8, b"\x00"), "big")
        return (prefix * self.n_shards) >> 64


class HashPartitioner(Partitioner):
    """CRC-32 spread of keys across shards (order-destroying)."""

    ordered = False

    def shard_of(self, key: bytes) -> int:
        return zlib.crc32(key) % self.n_shards


#: Partitioner names accepted by :func:`make_partitioner`.
PARTITIONERS = ("hash", "range")


def make_partitioner(kind: str, n_shards: int) -> Partitioner:
    """Instantiate a partitioner by its configuration name."""
    if kind == "hash":
        return HashPartitioner(n_shards)
    if kind == "range":
        return RangePartitioner(n_shards)
    raise ShardConfigError(
        f"unknown partitioner {kind!r}; choose from {PARTITIONERS}"
    )
